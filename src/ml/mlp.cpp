#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <istream>
#include <string>
#include <stdexcept>

namespace prete::ml {

void MlpPredictor::Tensor::init(int r, int c, double scale, util::Rng& rng) {
  rows = r;
  cols = c;
  const auto n = static_cast<std::size_t>(r) * static_cast<std::size_t>(c);
  w.assign(n, 0.0);
  g.assign(n, 0.0);
  m.assign(n, 0.0);
  v.assign(n, 0.0);
  for (double& x : w) x = scale * (2.0 * rng.next_double() - 1.0);
}

void MlpPredictor::Tensor::zero_grad() { std::fill(g.begin(), g.end(), 0.0); }

void MlpPredictor::Tensor::adam_step(double lr, double l2, int t) {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  const double bc1 = 1.0 - std::pow(kBeta1, t);
  const double bc2 = 1.0 - std::pow(kBeta2, t);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double grad = g[i] + l2 * w[i];
    m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * grad;
    v[i] = kBeta2 * v[i] + (1.0 - kBeta2) * grad * grad;
    const double mhat = m[i] / bc1;
    const double vhat = v[i] / bc2;
    w[i] -= lr * mhat / (std::sqrt(vhat) + kEps);
  }
}

void MlpConfig::validate() const {
  // Negated comparisons throughout (mirroring validate_diurnal_config) so a
  // NaN in any field fails the check instead of slipping past `<`.
  if (hidden_units < 1) {
    throw std::invalid_argument("mlp: hidden_units must be >= 1");
  }
  if (region_embedding < 1 || fiber_embedding < 1 || vendor_embedding < 1) {
    throw std::invalid_argument("mlp: embedding widths must be >= 1");
  }
  if (!(learning_rate > 0.0) || !std::isfinite(learning_rate)) {
    throw std::invalid_argument(
        "mlp: learning_rate must be positive and finite");
  }
  if (!(l2 >= 0.0) || !std::isfinite(l2)) {
    throw std::invalid_argument("mlp: l2 must be non-negative and finite");
  }
  if (epochs < 1) {
    throw std::invalid_argument("mlp: epochs must be >= 1");
  }
  if (batch_size < 1) {
    throw std::invalid_argument("mlp: batch_size must be >= 1");
  }
  // Out-of-range finite priors stay legal — the predictor clamps them to
  // [0, 1] on use (see the field comment and PredictorGuardTest) — but a
  // non-finite bound has no clamp-to value and is rejected.
  if (!std::isfinite(static_prior)) {
    throw std::invalid_argument("mlp: static_prior must be finite");
  }
}

MlpPredictor::MlpPredictor(FeatureEncoder encoder, MlpConfig config)
    : encoder_(std::move(encoder)), config_(config) {
  config_.validate();
  util::Rng rng(config_.seed);
  const auto& mask = encoder_.mask();
  const int dense = encoder_.dense_size();
  region_offset_ = dense;
  const int region_dim = mask.region ? config_.region_embedding : 0;
  fiber_offset_ = region_offset_ + region_dim;
  const int fiber_dim = mask.fiber_id ? config_.fiber_embedding : 0;
  vendor_offset_ = fiber_offset_ + fiber_dim;
  const int vendor_dim = mask.vendor ? config_.vendor_embedding : 0;
  input_size_ = vendor_offset_ + vendor_dim;
  if (input_size_ == 0) throw std::invalid_argument("all features masked out");

  const double in_scale = std::sqrt(2.0 / static_cast<double>(input_size_));
  w1_.init(config_.hidden_units, input_size_, in_scale, rng);
  b1_.init(config_.hidden_units, 1, 0.0, rng);
  w2_.init(2, config_.hidden_units,
           std::sqrt(2.0 / static_cast<double>(config_.hidden_units)), rng);
  b2_.init(2, 1, 0.0, rng);
  region_emb_.init(encoder_.num_regions(), std::max(region_dim, 1), 0.1, rng);
  fiber_emb_.init(encoder_.num_fibers(), std::max(fiber_dim, 1), 0.1, rng);
  vendor_emb_.init(encoder_.num_vendors(), std::max(vendor_dim, 1), 0.1, rng);
}

std::vector<double> MlpPredictor::assemble_input(
    const optical::DegradationFeatures& f) const {
  std::vector<double> input(static_cast<std::size_t>(input_size_), 0.0);
  const std::vector<double> dense = encoder_.encode_dense(f);
  std::copy(dense.begin(), dense.end(), input.begin());
  const auto idx = encoder_.encode_categorical(f);
  const auto& mask = encoder_.mask();
  if (mask.region && idx.region >= 0) {
    for (int d = 0; d < config_.region_embedding; ++d) {
      input[static_cast<std::size_t>(region_offset_ + d)] =
          region_emb_.at(idx.region, d);
    }
  }
  if (mask.fiber_id && idx.fiber >= 0) {
    for (int d = 0; d < config_.fiber_embedding; ++d) {
      input[static_cast<std::size_t>(fiber_offset_ + d)] =
          fiber_emb_.at(idx.fiber, d);
    }
  }
  if (mask.vendor && idx.vendor >= 0) {
    for (int d = 0; d < config_.vendor_embedding; ++d) {
      input[static_cast<std::size_t>(vendor_offset_ + d)] =
          vendor_emb_.at(idx.vendor, d);
    }
  }
  return input;
}

double MlpPredictor::forward(const std::vector<double>& input,
                             std::vector<double>* hidden_out,
                             std::vector<double>* probs_out) const {
  std::vector<double> hidden(static_cast<std::size_t>(config_.hidden_units));
  for (int h = 0; h < config_.hidden_units; ++h) {
    double acc = b1_.at(h, 0);
    for (int i = 0; i < input_size_; ++i) {
      acc += w1_.at(h, i) * input[static_cast<std::size_t>(i)];
    }
    hidden[static_cast<std::size_t>(h)] = acc > 0.0 ? acc : 0.0;  // ReLU
  }
  double logits[2];
  for (int k = 0; k < 2; ++k) {
    double acc = b2_.at(k, 0);
    for (int h = 0; h < config_.hidden_units; ++h) {
      acc += w2_.at(k, h) * hidden[static_cast<std::size_t>(h)];
    }
    logits[k] = acc;
  }
  // Softmax over {normal, failure}.
  const double mx = std::max(logits[0], logits[1]);
  const double e0 = std::exp(logits[0] - mx);
  const double e1 = std::exp(logits[1] - mx);
  const double p1 = e1 / (e0 + e1);
  if (hidden_out) *hidden_out = std::move(hidden);
  if (probs_out) *probs_out = {1.0 - p1, p1};
  return p1;
}

double MlpPredictor::train(const Dataset& raw_train) {
  util::Rng rng(config_.seed ^ 0xABCDEF);
  const Dataset train = config_.oversample_minority
                            ? oversample(raw_train, rng)
                            : raw_train;
  if (train.examples.empty()) throw std::invalid_argument("empty training set");

  std::vector<std::size_t> order(train.examples.size());
  std::iota(order.begin(), order.end(), 0);

  const auto& mask = encoder_.mask();
  double final_loss = 0.0;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    double epoch_loss = 0.0;
    std::size_t batch_count = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config_.batch_size)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(config_.batch_size));
      w1_.zero_grad();
      b1_.zero_grad();
      w2_.zero_grad();
      b2_.zero_grad();
      region_emb_.zero_grad();
      fiber_emb_.zero_grad();
      vendor_emb_.zero_grad();

      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (std::size_t bi = start; bi < end; ++bi) {
        const Example& ex = train.examples[order[bi]];
        const std::vector<double> input = assemble_input(ex.features);
        std::vector<double> hidden;
        std::vector<double> probs;
        forward(input, &hidden, &probs);
        const double p_true = std::max(probs[static_cast<std::size_t>(ex.label)], 1e-12);
        epoch_loss += -std::log(p_true);

        // Backward: dL/dlogits = probs - onehot(label).
        double dlogits[2] = {probs[0], probs[1]};
        dlogits[ex.label] -= 1.0;
        dlogits[0] *= inv_batch;
        dlogits[1] *= inv_batch;

        std::vector<double> dhidden(static_cast<std::size_t>(config_.hidden_units), 0.0);
        for (int k = 0; k < 2; ++k) {
          b2_.grad_at(k, 0) += dlogits[k];
          for (int h = 0; h < config_.hidden_units; ++h) {
            w2_.grad_at(k, h) += dlogits[k] * hidden[static_cast<std::size_t>(h)];
            dhidden[static_cast<std::size_t>(h)] += dlogits[k] * w2_.at(k, h);
          }
        }
        std::vector<double> dinput(static_cast<std::size_t>(input_size_), 0.0);
        for (int h = 0; h < config_.hidden_units; ++h) {
          if (hidden[static_cast<std::size_t>(h)] <= 0.0) continue;  // ReLU'
          const double dh = dhidden[static_cast<std::size_t>(h)];
          b1_.grad_at(h, 0) += dh;
          for (int i = 0; i < input_size_; ++i) {
            w1_.grad_at(h, i) += dh * input[static_cast<std::size_t>(i)];
            dinput[static_cast<std::size_t>(i)] += dh * w1_.at(h, i);
          }
        }
        // Embedding gradients flow through the input slices.
        const auto idx = encoder_.encode_categorical(ex.features);
        if (mask.region && idx.region >= 0) {
          for (int d = 0; d < config_.region_embedding; ++d) {
            region_emb_.grad_at(idx.region, d) +=
                dinput[static_cast<std::size_t>(region_offset_ + d)];
          }
        }
        if (mask.fiber_id && idx.fiber >= 0) {
          for (int d = 0; d < config_.fiber_embedding; ++d) {
            fiber_emb_.grad_at(idx.fiber, d) +=
                dinput[static_cast<std::size_t>(fiber_offset_ + d)];
          }
        }
        if (mask.vendor && idx.vendor >= 0) {
          for (int d = 0; d < config_.vendor_embedding; ++d) {
            vendor_emb_.grad_at(idx.vendor, d) +=
                dinput[static_cast<std::size_t>(vendor_offset_ + d)];
          }
        }
      }

      ++adam_t_;
      w1_.adam_step(config_.learning_rate, config_.l2, adam_t_);
      b1_.adam_step(config_.learning_rate, 0.0, adam_t_);
      w2_.adam_step(config_.learning_rate, config_.l2, adam_t_);
      b2_.adam_step(config_.learning_rate, 0.0, adam_t_);
      region_emb_.adam_step(config_.learning_rate, config_.l2, adam_t_);
      fiber_emb_.adam_step(config_.learning_rate, config_.l2, adam_t_);
      vendor_emb_.adam_step(config_.learning_rate, config_.l2, adam_t_);
      ++batch_count;
    }
    final_loss = epoch_loss / static_cast<double>(train.examples.size());
    (void)batch_count;
  }
  return final_loss;
}

double MlpPredictor::predict(const optical::DegradationFeatures& f) const {
  // Input guard: non-finite features would flow through every layer (ReLU
  // passes NaN, softmax of NaN logits is NaN) and poison the calibrated
  // probabilities downstream. Fall back to the static prior instead.
  if (!features_finite(f)) {
    return std::clamp(config_.static_prior, 0.0, 1.0);
  }
  const double p = forward(assemble_input(f), nullptr, nullptr);
  // Output guard: a model loaded with corrupt weights can still emit NaN.
  if (!std::isfinite(p)) return std::clamp(config_.static_prior, 0.0, 1.0);
  return std::clamp(p, 0.0, 1.0);
}

namespace {
constexpr const char* kMagic = "prete-mlp-v1";

void write_tensor(std::ostream& os, const std::vector<double>& w) {
  os << w.size();
  os.precision(17);
  for (double v : w) os << ' ' << v;
  os << '\n';
}

void read_tensor(std::istream& is, std::vector<double>& w) {
  std::size_t n = 0;
  is >> n;
  if (!is || n != w.size()) {
    throw std::runtime_error("MLP model file does not match the architecture");
  }
  for (double& v : w) is >> v;
  if (!is) throw std::runtime_error("truncated MLP model file");
}
}  // namespace

void MlpPredictor::save(std::ostream& os) const {
  os << kMagic << ' ' << input_size_ << ' ' << config_.hidden_units << '\n';
  write_tensor(os, w1_.w);
  write_tensor(os, b1_.w);
  write_tensor(os, w2_.w);
  write_tensor(os, b2_.w);
  write_tensor(os, region_emb_.w);
  write_tensor(os, fiber_emb_.w);
  write_tensor(os, vendor_emb_.w);
}

void MlpPredictor::load(std::istream& is) {
  std::string magic;
  int input = 0;
  int hidden = 0;
  is >> magic >> input >> hidden;
  if (!is || magic != kMagic) {
    throw std::runtime_error("not a PreTE MLP model file");
  }
  if (input != input_size_ || hidden != config_.hidden_units) {
    throw std::runtime_error("MLP model file does not match the architecture");
  }
  read_tensor(is, w1_.w);
  read_tensor(is, b1_.w);
  read_tensor(is, w2_.w);
  read_tensor(is, b2_.w);
  read_tensor(is, region_emb_.w);
  read_tensor(is, fiber_emb_.w);
  read_tensor(is, vendor_emb_.w);
}

}  // namespace prete::ml
