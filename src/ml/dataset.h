#pragma once

#include <vector>

#include "optical/events.h"
#include "util/rng.h"

namespace prete::ml {

// One training/evaluation example: the features of a degradation event and
// whether a cut followed within the next TE period (§4.1.1's label).
struct Example {
  optical::DegradationFeatures features;
  int label = 0;  // 1 = cut followed
  // Nature's conditional probability (hidden from the models; used to score
  // probability estimates for Figure 14).
  double true_probability = 0.0;
};

struct Dataset {
  std::vector<Example> examples;

  int positives() const;
  double positive_fraction() const;
};

// Builds the labeled dataset from a simulated event log.
Dataset build_dataset(const optical::EventLog& log);

// Per-fiber chronological 80/20 split (Appendix A.2: "the first 80% of each
// fiber's degradation signals as training data").
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit split_per_fiber(const Dataset& dataset, double train_fraction = 0.8);

// Random oversampling of the minority class until the classes balance
// (§4.1.1 "we adopt the oversampling approach to address the imbalance").
Dataset oversample(const Dataset& dataset, util::Rng& rng);

}  // namespace prete::ml
