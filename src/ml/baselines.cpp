#include "ml/baselines.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace prete::ml {

TeaVarStaticPredictor::TeaVarStaticPredictor(
    std::map<int, double> static_probability, double fallback)
    : static_probability_(std::move(static_probability)), fallback_(fallback) {}

double TeaVarStaticPredictor::predict(
    const optical::DegradationFeatures& features) const {
  const auto it = static_probability_.find(features.fiber_id);
  return it != static_probability_.end() ? it->second : fallback_;
}

void StatisticPredictor::train(const Dataset& train) {
  fiber_counts_.clear();
  int fails = 0;
  for (const Example& e : train.examples) {
    auto& [fail, total] = fiber_counts_[e.features.fiber_id];
    fail += e.label;
    ++total;
    fails += e.label;
  }
  global_rate_ = train.examples.empty()
                     ? 0.4
                     : static_cast<double>(fails) /
                           static_cast<double>(train.examples.size());
}

double StatisticPredictor::predict(
    const optical::DegradationFeatures& features) const {
  const auto it = fiber_counts_.find(features.fiber_id);
  if (it == fiber_counts_.end()) return global_rate_;
  const auto& [fail, total] = it->second;
  // Laplace smoothing toward the global rate.
  return (static_cast<double>(fail) + smoothing_ * global_rate_) /
         (static_cast<double>(total) + smoothing_);
}

std::vector<double> DecisionTreePredictor::to_vector(
    const optical::DegradationFeatures& f) {
  return {f.hour,
          f.degree_db,
          f.gradient_db,
          f.fluctuation,
          f.length_km,
          static_cast<double>(f.region),
          static_cast<double>(f.vendor),
          static_cast<double>(f.fiber_id)};
}

void DecisionTreePredictor::train(const Dataset& train) {
  nodes_.clear();
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  x.reserve(train.examples.size());
  y.reserve(train.examples.size());
  for (const Example& e : train.examples) {
    x.push_back(to_vector(e.features));
    y.push_back(e.label);
  }
  std::vector<int> indices(static_cast<int>(x.size()));
  std::iota(indices.begin(), indices.end(), 0);
  build(indices, x, y, 0);
}

int DecisionTreePredictor::build(std::vector<int>& indices,
                                 const std::vector<std::vector<double>>& x,
                                 const std::vector<int>& y, int depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  int positives = 0;
  for (int i : indices) positives += y[static_cast<std::size_t>(i)];
  const double p = indices.empty()
                       ? 0.0
                       : static_cast<double>(positives) /
                             static_cast<double>(indices.size());
  nodes_[static_cast<std::size_t>(node_id)].probability = p;

  if (depth >= config_.max_depth ||
      static_cast<int>(indices.size()) < 2 * config_.min_samples_leaf ||
      positives == 0 || positives == static_cast<int>(indices.size())) {
    return node_id;  // leaf
  }

  // Exhaustive split search: for each feature, candidate thresholds at the
  // midpoints of sorted unique values.
  const std::size_t num_features = x.front().size();
  double best_gini = std::numeric_limits<double>::infinity();
  int best_feature = -1;
  double best_threshold = 0.0;

  for (std::size_t f = 0; f < num_features; ++f) {
    std::vector<int> sorted = indices;
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return x[static_cast<std::size_t>(a)][f] < x[static_cast<std::size_t>(b)][f];
    });
    int left_pos = 0;
    for (std::size_t k = 1; k < sorted.size(); ++k) {
      left_pos += y[static_cast<std::size_t>(sorted[k - 1])];
      const double prev = x[static_cast<std::size_t>(sorted[k - 1])][f];
      const double curr = x[static_cast<std::size_t>(sorted[k])][f];
      if (prev == curr) continue;
      const auto left_n = static_cast<double>(k);
      const auto right_n = static_cast<double>(sorted.size() - k);
      if (left_n < config_.min_samples_leaf || right_n < config_.min_samples_leaf) {
        continue;
      }
      const double lp = static_cast<double>(left_pos) / left_n;
      const double rp = static_cast<double>(positives - left_pos) / right_n;
      const double gini = left_n * 2.0 * lp * (1.0 - lp) +
                          right_n * 2.0 * rp * (1.0 - rp);
      if (gini < best_gini) {
        best_gini = gini;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (prev + curr);
      }
    }
  }
  if (best_feature < 0) return node_id;

  std::vector<int> left;
  std::vector<int> right;
  for (int i : indices) {
    if (x[static_cast<std::size_t>(i)][static_cast<std::size_t>(best_feature)] <=
        best_threshold) {
      left.push_back(i);
    } else {
      right.push_back(i);
    }
  }
  if (left.empty() || right.empty()) return node_id;

  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int l = build(left, x, y, depth + 1);
  nodes_[static_cast<std::size_t>(node_id)].left = l;
  const int r = build(right, x, y, depth + 1);
  nodes_[static_cast<std::size_t>(node_id)].right = r;
  return node_id;
}

double DecisionTreePredictor::predict(
    const optical::DegradationFeatures& features) const {
  if (nodes_.empty()) return 0.0;
  const std::vector<double> v = to_vector(features);
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = v[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                 : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].probability;
}

OraclePredictor::OraclePredictor(const Dataset& reference) {
  for (const Example& e : reference.examples) {
    lookup_[{e.features.fiber_id, e.features.degree_db, e.features.gradient_db}] =
        e.true_probability;
  }
}

double OraclePredictor::predict(
    const optical::DegradationFeatures& features) const {
  const auto it =
      lookup_.find({features.fiber_id, features.degree_db, features.gradient_db});
  return it != lookup_.end() ? it->second : 0.5;
}

}  // namespace prete::ml
