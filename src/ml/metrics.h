#pragma once

#include <vector>

#include "ml/dataset.h"
#include "ml/predictor.h"

namespace prete::ml {

// Binary classification metrics as defined in §6.3 (footnote 4).
struct Metrics {
  int tp = 0;
  int fp = 0;
  int tn = 0;
  int fn = 0;

  double precision() const;
  double recall() const;
  double f1() const;
  double accuracy() const;
};

// Evaluates a predictor's argmax labels on a dataset.
Metrics evaluate(const FailurePredictor& predictor, const Dataset& test);

// Per-example absolute probability-prediction errors |p_hat - p_true|
// (the Figure 14 CDF series).
std::vector<double> probability_errors(const FailurePredictor& predictor,
                                       const Dataset& test);

}  // namespace prete::ml
