#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "ml/dataset.h"
#include "ml/encoder.h"
#include "ml/predictor.h"
#include "util/rng.h"

namespace prete::ml {

struct MlpConfig {
  // Architecture per Appendix A.2 / Figure 9.
  int hidden_units = 64;
  int region_embedding = 4;
  int fiber_embedding = 8;
  int vendor_embedding = 3;
  // Training recipe per Appendix A.2.
  double learning_rate = 1e-3;
  double l2 = 2e-4;
  int epochs = 60;
  int batch_size = 32;
  bool oversample_minority = true;
  std::uint64_t seed = 1;
  // Fallback P(failure) returned when an input feature is non-finite
  // (corrupted telemetry reached the predictor): roughly the base rate of
  // degradations evolving into cuts (~40%, §3.1). Clamped to [0, 1] on use.
  double static_prior = 0.4;

  // Throws std::invalid_argument on non-positive layer widths, a malformed
  // learning rate / epoch count, or a non-finite scale bound. Called by the
  // MlpPredictor constructor, so a bad config fails loudly at build time
  // instead of producing NaN weights mid-training.
  void validate() const;
};

// The paper's failure-prediction network: min-max-scaled continuous inputs
// and one-hot hour in the dense block, learned embeddings for region /
// fiber-id / vendor, one 64-unit ReLU hidden layer, a 2-unit decoder, and a
// softmax head. Trained with Adam + L2 and minority oversampling.
class MlpPredictor : public FailurePredictor {
 public:
  MlpPredictor(FeatureEncoder encoder, MlpConfig config = {});

  // Trains on the given dataset; returns the final mean training NLL.
  double train(const Dataset& train);

  double predict(const optical::DegradationFeatures& features) const override;

  // Serializes the trained weights (text format, version-tagged). The paper
  // trains offline and ships the model to the controller (§5); save/load is
  // that deployment boundary. The encoder's min-max ranges are NOT part of
  // the file — construct the loading predictor with an encoder fitted on
  // the same training data so the input scaling matches.
  void save(std::ostream& os) const;
  // Loads weights saved by save(). The architecture (config + encoder
  // cardinalities) must match; throws std::runtime_error otherwise.
  void load(std::istream& is);

  const FeatureEncoder& encoder() const { return encoder_; }
  const MlpConfig& config() const { return config_; }

 private:
  struct Tensor {
    int rows = 0;
    int cols = 0;
    std::vector<double> w;   // row-major weights
    std::vector<double> g;   // gradient accumulator
    std::vector<double> m;   // Adam first moment
    std::vector<double> v;   // Adam second moment

    void init(int r, int c, double scale, util::Rng& rng);
    void zero_grad();
    void adam_step(double lr, double l2, int t);
    double& at(int r, int c) { return w[static_cast<std::size_t>(r) * cols + c]; }
    double at(int r, int c) const {
      return w[static_cast<std::size_t>(r) * cols + c];
    }
    double& grad_at(int r, int c) {
      return g[static_cast<std::size_t>(r) * cols + c];
    }
  };

  // Builds the concatenated input vector for an example.
  std::vector<double> assemble_input(const optical::DegradationFeatures& f) const;
  // Forward pass; returns P(failure). When `grad` is true the intermediate
  // activations are kept for the subsequent backward pass.
  double forward(const std::vector<double>& input,
                 std::vector<double>* hidden_out,
                 std::vector<double>* probs_out) const;

  FeatureEncoder encoder_;
  MlpConfig config_;
  int input_size_ = 0;
  int fiber_offset_ = 0;   // offsets of embedding slices within the input
  int region_offset_ = 0;
  int vendor_offset_ = 0;

  Tensor w1_;              // hidden x input
  Tensor b1_;              // hidden x 1
  Tensor w2_;              // 2 x hidden
  Tensor b2_;              // 2 x 1
  Tensor region_emb_;      // num_regions x region_embedding
  Tensor fiber_emb_;       // num_fibers x fiber_embedding
  Tensor vendor_emb_;      // num_vendors x vendor_embedding
  int adam_t_ = 0;
};

}  // namespace prete::ml
