#include "ml/oracle.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "runtime/parallel.h"

namespace prete::ml {

namespace {

// Feature/target scale shared by featurize() and the allocation head:
// demands and allocations are Gbps in the hundreds-to-thousands on the
// continental workload, so 1e-3 keeps the regression in unit range.
constexpr double kGbpsScale = 1e-3;
// Per-fiber cut probabilities sit around 1e-5..1e-3; 1e4 spreads them over
// [0, 1] without a fitted range (incremental training never refits).
constexpr double kProbScale = 1e4;

// Majority vote over the reservoir: a (flow, pattern) pair is predicted
// when at least `fraction` of the traces contain it, carrying the mean of
// the weights it was observed with (the solver clamps them into the dual
// range on use; non-finite observations are dropped from the mean). The
// tally map is ordered, so the emitted pairs are sorted by (flow, pattern)
// — a deterministic order the solver consumes as given — and the mean is
// folded in trace order, so it is bit-reproducible too.
std::vector<te::WarmHint::Pair> vote_pairs(
    const std::vector<SolveTrace>& samples,
    std::vector<te::WarmHint::Pair> SolveTrace::*field, double fraction) {
  struct Tally {
    std::size_t count = 0;
    std::size_t weighted = 0;
    double weight_sum = 0.0;
  };
  std::map<std::pair<int, std::uint64_t>, Tally> tallies;
  for (const SolveTrace& s : samples) {
    for (const te::WarmHint::Pair& p : s.*field) {
      Tally& t = tallies[{p.flow, p.pattern}];
      ++t.count;
      if (std::isfinite(p.weight) && p.weight > 0.0) {
        ++t.weighted;
        t.weight_sum += p.weight;
      }
    }
  }
  const double need = fraction * static_cast<double>(samples.size());
  std::vector<te::WarmHint::Pair> out;
  for (const auto& [key, tally] : tallies) {
    if (static_cast<double>(tally.count) + 1e-9 >= need) {
      const double w =
          tally.weighted > 0
              ? tally.weight_sum / static_cast<double>(tally.weighted)
              : 0.0;
      out.push_back({key.first, key.second, w});
    }
  }
  return out;
}

// Deterministic feasibility repair, the same idiom as the controller's
// static floor: scale the whole vector down by the worst link-overload
// ratio. The output always passes the solver's capacity verification, so a
// wild regression output degrades into a conservative hint, never a
// rejected one.
void repair_capacity(const te::TeProblem& problem,
                     std::vector<double>& allocation) {
  const net::Network& net = *problem.network;
  if (allocation.size() !=
      static_cast<std::size_t>(problem.tunnels->num_tunnels())) {
    allocation.clear();  // not this problem's shape; let the solver reject
    return;
  }
  std::vector<double> load(static_cast<std::size_t>(net.num_links()), 0.0);
  for (const net::Tunnel& t : problem.tunnels->tunnels()) {
    for (net::LinkId e : t.path) {
      load[static_cast<std::size_t>(e)] +=
          allocation[static_cast<std::size_t>(t.id)];
    }
  }
  double worst = 1.0;
  bool hopeless = false;
  for (net::LinkId e = 0; e < net.num_links(); ++e) {
    const double cap = net.link(e).capacity_gbps;
    if (load[static_cast<std::size_t>(e)] > cap) {
      if (cap > 0.0) {
        worst = std::max(worst, load[static_cast<std::size_t>(e)] / cap);
      } else {
        hopeless = true;  // positive load on a zero-capacity link
      }
    }
  }
  if (hopeless || !std::isfinite(worst)) {
    std::fill(allocation.begin(), allocation.end(), 0.0);
  } else if (worst > 1.0) {
    const double scale = worst * (1.0 + 1e-9);
    for (double& a : allocation) a /= scale;
  }
}

}  // namespace

void OracleConfig::validate() const {
  // Negated comparisons so NaN fields fail instead of slipping past `<`.
  if (hidden_units < 1) {
    throw std::invalid_argument("oracle: hidden_units must be >= 1");
  }
  if (!(learning_rate > 0.0) || !std::isfinite(learning_rate)) {
    throw std::invalid_argument(
        "oracle: learning_rate must be positive and finite");
  }
  if (!(l2 >= 0.0) || !std::isfinite(l2)) {
    throw std::invalid_argument("oracle: l2 must be non-negative and finite");
  }
  if (train_epochs < 1) {
    throw std::invalid_argument("oracle: train_epochs must be >= 1");
  }
  if (reservoir_capacity < 1) {
    throw std::invalid_argument("oracle: reservoir_capacity must be >= 1");
  }
  if (min_examples < 1) {
    throw std::invalid_argument("oracle: min_examples must be >= 1");
  }
  if (!(vote_fraction > 0.0 && vote_fraction <= 1.0)) {
    throw std::invalid_argument("oracle: vote_fraction must be in (0, 1]");
  }
  if (max_shapes < 1) {
    throw std::invalid_argument("oracle: max_shapes must be >= 1");
  }
  if (!(pivot_ewma_alpha > 0.0 && pivot_ewma_alpha <= 1.0)) {
    throw std::invalid_argument(
        "oracle: pivot_ewma_alpha must be in (0, 1]");
  }
}

bool TraceDataset::add(SolveTrace trace) {
  const std::uint64_t i = seen_++;
  if (samples_.size() < capacity_) {
    samples_.push_back(std::move(trace));
    return true;
  }
  // Reservoir step on the order-independent sub-stream for arrival i:
  // retention is a pure function of (seed, i), so two datasets fed the same
  // sequence hold identical samples regardless of what else draws
  // randomness in the process.
  const std::uint64_t j = root_.split(i).next_below(i + 1);
  if (j < capacity_) {
    samples_[static_cast<std::size_t>(j)] = std::move(trace);
    return true;
  }
  return false;
}

WarmStartOracle::WarmStartOracle(OracleConfig config) : config_(config) {
  config_.validate();
}

std::vector<double> WarmStartOracle::featurize(
    const te::TeProblem& problem, const std::vector<double>& fiber_probs) {
  std::vector<double> x;
  x.reserve(problem.demands.size() + fiber_probs.size());
  for (const double d : problem.demands) {
    x.push_back(std::isfinite(d) ? d * kGbpsScale : 0.0);
  }
  for (const double p : fiber_probs) {
    x.push_back(std::isfinite(p)
                    ? std::min(std::max(p, 0.0) * kProbScale, 1.0)
                    : 0.0);
  }
  return x;
}

WarmStartOracle::ShapeModel& WarmStartOracle::shape_model(
    std::uint64_t signature) {
  auto it = shapes_.find(signature);
  if (it == shapes_.end()) {
    it = shapes_
             .emplace(signature, ShapeModel(config_.reservoir_capacity,
                                            config_.seed ^ signature))
             .first;
    it->second.last_used = ++clock_;
    // LRU bound, mirroring te::PreTeScheme's shape cap: the entry just
    // created carries the newest clock, so it is never its own victim.
    while (shapes_.size() > config_.max_shapes) {
      auto victim = shapes_.begin();
      for (auto jt = shapes_.begin(); jt != shapes_.end(); ++jt) {
        if (jt->second.last_used < victim->second.last_used) victim = jt;
      }
      shapes_.erase(victim);
      ++stats_.shapes_evicted;
    }
  }
  it->second.last_used = ++clock_;
  return it->second;
}

void WarmStartOracle::observe(const te::TeProblem& problem,
                              const std::vector<double>& fiber_probs,
                              const te::MinMaxResult& result) {
  // Only converged solves with a policy make training examples; a
  // deadline-starved incumbent describes where the solve stopped, not
  // where it was headed.
  if (!result.converged || result.policy.allocation.empty()) return;
  ShapeModel& model = shape_model(te::problem_shape_signature(problem));
  if (result.hint_accepted == 0) {
    // Unhinted (or rejected-hint, i.e. bitwise-cold) solves calibrate the
    // expected-cold-pivots estimate; hinted solves would bias it down.
    const auto pivots = static_cast<double>(result.simplex_pivots);
    model.pivot_ewma =
        model.pivot_ewma <= 0.0
            ? pivots
            : (1.0 - config_.pivot_ewma_alpha) * model.pivot_ewma +
                  config_.pivot_ewma_alpha * pivots;
  }
  SolveTrace trace;
  trace.features = featurize(problem, fiber_probs);
  trace.allocation = result.policy.allocation;
  trace.drops = result.trace_drops;
  trace.active_rows = result.trace_active_rows;
  trace.pivots = result.simplex_pivots;
  model.dataset.add(std::move(trace));
  model.dirty = true;
  ++stats_.observed;
}

void WarmStartOracle::RegressionHead::init(int in, int hid, int out,
                                           util::Rng rng) {
  input = in;
  hidden = hid;
  output = out;
  const double s1 = 0.5 / std::sqrt(static_cast<double>(std::max(1, in)));
  const double s2 = 0.5 / std::sqrt(static_cast<double>(std::max(1, hid)));
  w1.assign(static_cast<std::size_t>(hid) * static_cast<std::size_t>(in), 0.0);
  for (double& w : w1) w = s1 * (2.0 * rng.next_double() - 1.0);
  b1.assign(static_cast<std::size_t>(hid), 0.0);
  w2.assign(static_cast<std::size_t>(out) * static_cast<std::size_t>(hid),
            0.0);
  for (double& w : w2) w = s2 * (2.0 * rng.next_double() - 1.0);
  b2.assign(static_cast<std::size_t>(out), 0.0);
  trained = false;
}

std::vector<double> WarmStartOracle::RegressionHead::forward(
    const std::vector<double>& x) const {
  std::vector<double> h(static_cast<std::size_t>(hidden), 0.0);
  for (int j = 0; j < hidden; ++j) {
    double acc = b1[static_cast<std::size_t>(j)];
    const double* row =
        w1.data() + static_cast<std::size_t>(j) * static_cast<std::size_t>(input);
    for (int k = 0; k < input; ++k) acc += row[k] * x[static_cast<std::size_t>(k)];
    h[static_cast<std::size_t>(j)] = acc > 0.0 ? acc : 0.0;
  }
  std::vector<double> y(static_cast<std::size_t>(output), 0.0);
  for (int o = 0; o < output; ++o) {
    double acc = b2[static_cast<std::size_t>(o)];
    const double* row =
        w2.data() + static_cast<std::size_t>(o) * static_cast<std::size_t>(hidden);
    for (int j = 0; j < hidden; ++j) acc += row[j] * h[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(o)] = acc;
  }
  return y;
}

void WarmStartOracle::train_shape(std::uint64_t signature, ShapeModel& model) {
  const std::vector<SolveTrace>& samples = model.dataset.samples();
  const SolveTrace& ref = samples.back();
  const int in = static_cast<int>(ref.features.size());
  const int out = static_cast<int>(ref.allocation.size());
  if (in == 0 || out == 0) return;
  RegressionHead& head = model.head;
  if (head.input != in || head.hidden != config_.hidden_units ||
      head.output != out) {
    // Weight init is a pure function of (seed, shape), independent of when
    // the shape was first seen.
    head.init(in, config_.hidden_units, out,
              util::Rng(config_.seed).split(signature));
  }
  // Traces with stale dimensions (harvested before a feature-source change)
  // are skipped rather than crashing the fold; the reservoir rotates them
  // out naturally.
  std::vector<const SolveTrace*> batch;
  batch.reserve(samples.size());
  for (const SolveTrace& s : samples) {
    if (static_cast<int>(s.features.size()) == in &&
        static_cast<int>(s.allocation.size()) == out) {
      batch.push_back(&s);
    }
  }
  if (batch.empty()) return;

  struct Grad {
    std::vector<double> w1, b1, w2, b2;
  };
  const auto hid = static_cast<std::size_t>(head.hidden);
  const auto nin = static_cast<std::size_t>(in);
  const auto nout = static_cast<std::size_t>(out);
  for (int epoch = 0; epoch < config_.train_epochs; ++epoch) {
    // Per-sample gradients on the pool; each task touches only its own Grad,
    // and the fold below runs serially in sample order — bit-identical at
    // any pool size.
    const std::vector<Grad> grads = runtime::parallel_map(
        batch.size(),
        [&](std::size_t s) {
          const SolveTrace& t = *batch[s];
          Grad g;
          g.w1.assign(hid * nin, 0.0);
          g.b1.assign(hid, 0.0);
          g.w2.assign(nout * hid, 0.0);
          g.b2.assign(nout, 0.0);
          // Forward with the pre-activation kept for the ReLU mask.
          std::vector<double> pre(hid, 0.0), h(hid, 0.0);
          for (std::size_t j = 0; j < hid; ++j) {
            double acc = head.b1[j];
            const double* row = head.w1.data() + j * nin;
            for (std::size_t k = 0; k < nin; ++k) acc += row[k] * t.features[k];
            pre[j] = acc;
            h[j] = acc > 0.0 ? acc : 0.0;
          }
          std::vector<double> dy(nout, 0.0);
          for (std::size_t o = 0; o < nout; ++o) {
            double acc = head.b2[o];
            const double* row = head.w2.data() + o * hid;
            for (std::size_t j = 0; j < hid; ++j) acc += row[j] * h[j];
            dy[o] = acc - t.allocation[o] * kGbpsScale;  // d(0.5 MSE)/dy
          }
          std::vector<double> dh(hid, 0.0);
          for (std::size_t o = 0; o < nout; ++o) {
            const double d = dy[o];
            double* grow = g.w2.data() + o * hid;
            const double* wrow = head.w2.data() + o * hid;
            for (std::size_t j = 0; j < hid; ++j) {
              grow[j] += d * h[j];
              dh[j] += d * wrow[j];
            }
            g.b2[o] += d;
          }
          for (std::size_t j = 0; j < hid; ++j) {
            if (pre[j] <= 0.0) continue;
            const double d = dh[j];
            double* grow = g.w1.data() + j * nin;
            for (std::size_t k = 0; k < nin; ++k) grow[k] += d * t.features[k];
            g.b1[j] += d;
          }
          return g;
        },
        /*grain=*/1);
    const double inv = 1.0 / static_cast<double>(batch.size());
    const double lr = config_.learning_rate;
    const double l2 = config_.l2;
    auto apply = [&](std::vector<double>& w,
                     std::vector<double> Grad::*member) {
      for (std::size_t i = 0; i < w.size(); ++i) {
        double g = 0.0;
        for (const Grad& grad : grads) g += (grad.*member)[i];
        w[i] -= lr * (g * inv + l2 * w[i]);
      }
    };
    apply(head.w1, &Grad::w1);
    apply(head.b1, &Grad::b1);
    apply(head.w2, &Grad::w2);
    apply(head.b2, &Grad::b2);
  }
  head.trained = true;
}

void WarmStartOracle::train() {
  // Ordered map, so shapes train in signature order — deterministic
  // regardless of observation interleaving.
  for (auto& [signature, model] : shapes_) {
    if (!model.dirty) continue;
    if (static_cast<int>(model.dataset.samples().size()) <
        config_.min_examples) {
      continue;
    }
    train_shape(signature, model);
    model.dirty = false;
    ++stats_.trained_batches;
  }
}

std::optional<te::WarmHint> WarmStartOracle::predict(
    const te::TeProblem& problem, const std::vector<double>& fiber_probs) {
  const std::uint64_t signature = te::problem_shape_signature(problem);
  const auto it = shapes_.find(signature);
  if (it == shapes_.end()) return std::nullopt;
  ShapeModel& model = it->second;
  if (!model.head.trained ||
      static_cast<int>(model.dataset.samples().size()) <
          config_.min_examples) {
    return std::nullopt;
  }
  const std::vector<double> x = featurize(problem, fiber_probs);
  if (static_cast<int>(x.size()) != model.head.input) return std::nullopt;
  model.last_used = ++clock_;

  te::WarmHint hint;
  hint.shape_signature = signature;
  const std::vector<double> y = model.head.forward(x);
  hint.allocation.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double v = y[i] / kGbpsScale;
    hint.allocation[i] = std::isfinite(v) && v > 0.0 ? v : 0.0;
  }
  repair_capacity(problem, hint.allocation);
  hint.drops =
      vote_pairs(model.dataset.samples(), &SolveTrace::drops,
                 config_.vote_fraction);
  hint.active_rows =
      vote_pairs(model.dataset.samples(), &SolveTrace::active_rows,
                 config_.vote_fraction);
  hint.expected_cold_pivots =
      model.pivot_ewma > 0.0
          ? static_cast<int>(std::lround(model.pivot_ewma))
          : 0;
  ++stats_.hints_issued;
  return hint;
}

WarmStartOracle::Stats WarmStartOracle::stats() const {
  Stats s = stats_;
  s.shapes = static_cast<int>(shapes_.size());
  return s;
}

}  // namespace prete::ml
