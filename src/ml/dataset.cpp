#include "ml/dataset.h"

#include <algorithm>
#include <map>

namespace prete::ml {

int Dataset::positives() const {
  int count = 0;
  for (const Example& e : examples) count += e.label;
  return count;
}

double Dataset::positive_fraction() const {
  if (examples.empty()) return 0.0;
  return static_cast<double>(positives()) /
         static_cast<double>(examples.size());
}

Dataset build_dataset(const optical::EventLog& log) {
  Dataset ds;
  ds.examples.reserve(log.degradations.size());
  for (const auto& d : log.degradations) {
    Example e;
    e.features = d.features;
    e.label = d.led_to_cut ? 1 : 0;
    e.true_probability = d.true_cut_probability;
    ds.examples.push_back(e);
  }
  return ds;
}

TrainTestSplit split_per_fiber(const Dataset& dataset, double train_fraction) {
  // Examples arrive chronologically from the log; group by fiber preserving
  // order, then cut each fiber's sequence at train_fraction.
  std::map<int, std::vector<const Example*>> by_fiber;
  for (const Example& e : dataset.examples) {
    by_fiber[e.features.fiber_id].push_back(&e);
  }
  TrainTestSplit split;
  for (const auto& [fiber, list] : by_fiber) {
    const auto cut = static_cast<std::size_t>(
        train_fraction * static_cast<double>(list.size()));
    for (std::size_t i = 0; i < list.size(); ++i) {
      (i < cut ? split.train : split.test).examples.push_back(*list[i]);
    }
  }
  return split;
}

Dataset oversample(const Dataset& dataset, util::Rng& rng) {
  std::vector<const Example*> pos;
  std::vector<const Example*> neg;
  for (const Example& e : dataset.examples) {
    (e.label ? pos : neg).push_back(&e);
  }
  Dataset out = dataset;
  if (pos.empty() || neg.empty()) return out;
  auto& minority = pos.size() < neg.size() ? pos : neg;
  const std::size_t majority_size = std::max(pos.size(), neg.size());
  while (minority.size() < majority_size) {
    const auto pick = rng.next_below(minority.size());
    out.examples.push_back(*minority[static_cast<std::size_t>(pick)]);
    minority.push_back(minority[static_cast<std::size_t>(pick)]);
  }
  return out;
}

}  // namespace prete::ml
