#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "te/minmax.h"
#include "te/types.h"
#include "util/rng.h"

namespace prete::ml {

// Configuration of the learned warm-start oracle. The oracle is an
// accelerator, never an authority — every prediction it emits is re-verified
// by solve_min_max_benders — so these knobs trade prediction quality against
// memory and training cost, not against correctness.
struct OracleConfig {
  // Regression-head architecture: one ReLU hidden layer between the
  // (demands ++ fiber probabilities) feature vector and the per-tunnel
  // allocation output.
  int hidden_units = 16;
  double learning_rate = 5e-3;
  double l2 = 1e-6;
  // Full passes over the reservoir per train() call. Training is
  // incremental: each call continues from the current weights.
  int train_epochs = 2;
  // Bounded per-shape training store (see TraceDataset).
  std::size_t reservoir_capacity = 32;
  // predict() abstains until a shape has at least this many harvested
  // traces — an oracle guessing from one example only burns verification.
  int min_examples = 2;
  // A (flow, pattern) pair enters the predicted drop / active-row set when
  // it appears in at least this fraction of the reservoir's traces.
  double vote_fraction = 0.5;
  // Per-shape state is LRU-bounded, mirroring te::PreTeScheme's shape cap.
  std::size_t max_shapes = 8;
  std::uint64_t seed = 17;
  // EWMA factor for the expected-cold-pivots estimate (weight of the newest
  // unhinted observation).
  double pivot_ewma_alpha = 0.3;

  // Throws std::invalid_argument on non-positive widths/counts, a malformed
  // learning rate, or out-of-range fractions (NaN rejected throughout).
  void validate() const;
};

// One harvested solver trace: the features the epoch was solved under and
// the converged artifacts worth imitating. Drops and active rows are keyed
// by (flow, pattern signature) — the cross-epoch-stable key — exactly as
// MinMaxResult::trace_* report them.
struct SolveTrace {
  std::vector<double> features;
  std::vector<double> allocation;
  std::vector<te::WarmHint::Pair> drops;
  std::vector<te::WarmHint::Pair> active_rows;
  int pivots = 0;
};

// Bounded training store with deterministic reservoir sampling. Retention
// of arrival i is decided by Rng::split(i) — a pure function of (seed,
// arrival index) that consumes no generator state — so the retained set
// depends only on the add sequence, never on thread count or on anything
// else drawing randomness in the process.
class TraceDataset {
 public:
  TraceDataset(std::size_t capacity, std::uint64_t seed)
      : capacity_(capacity < 1 ? 1 : capacity), root_(seed) {}

  // Classic reservoir step; returns whether the trace was retained.
  bool add(SolveTrace trace);

  const std::vector<SolveTrace>& samples() const { return samples_; }
  std::uint64_t seen() const { return seen_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  util::Rng root_;
  std::vector<SolveTrace> samples_;
  std::uint64_t seen_ = 0;
};

// Learned warm-start oracle for the Benders TE solve: harvests converged
// solver traces per problem shape (observe), trains a small regression head
// plus vote tables incrementally (train, deterministic on the runtime
// pool), and emits te::WarmHint predictions (predict) — a per-tunnel
// allocation repaired to capacity feasibility, the majority-vote drop set,
// the majority-vote active Phi-rows, and a running expected-cold-pivots
// estimate. The solver verifies everything; see MinMaxOptions::warm_hint
// for the exactness contract.
class WarmStartOracle {
 public:
  explicit WarmStartOracle(OracleConfig config = {});

  // Feature map shared by observe() and predict(): scaled demands followed
  // by scaled per-fiber cut probabilities. Deliberately data-independent
  // scaling (no fitted ranges) so incremental training never needs a refit,
  // and non-finite inputs map to 0 instead of poisoning the weights.
  static std::vector<double> featurize(const te::TeProblem& problem,
                                       const std::vector<double>& fiber_probs);

  // Harvests one solve. Only converged solves with a policy and an
  // unhinted (cold-equivalent) pivot count contribute; hinted solves still
  // feed the reservoir but not the expected-cold-pivots EWMA.
  void observe(const te::TeProblem& problem,
               const std::vector<double>& fiber_probs,
               const te::MinMaxResult& result);

  // Incremental training pass over every shape with new data. Runs
  // per-sample gradients on the runtime pool and folds them in sample
  // order, so the resulting weights are bit-identical at any pool size.
  void train();

  // Emits a hint for the given epoch, or nullopt when the shape is unknown,
  // undertrained, or below min_examples.
  std::optional<te::WarmHint> predict(const te::TeProblem& problem,
                                      const std::vector<double>& fiber_probs);

  struct Stats {
    int observed = 0;         // traces harvested into a reservoir
    int trained_batches = 0;  // per-shape training passes completed
    int hints_issued = 0;     // predictions emitted
    int shapes = 0;           // live per-shape models
    int shapes_evicted = 0;   // models dropped by the LRU bound
  };
  Stats stats() const;

  const OracleConfig& config() const { return config_; }

 private:
  // Tiny deterministic regression net: input -> ReLU hidden -> linear
  // output. Weights live in plain row-major vectors; initialization is a
  // pure function of (seed, shape signature).
  struct RegressionHead {
    int input = 0;
    int hidden = 0;
    int output = 0;
    std::vector<double> w1, b1, w2, b2;
    bool trained = false;

    void init(int in, int hid, int out, util::Rng rng);
    std::vector<double> forward(const std::vector<double>& x) const;
  };

  struct ShapeModel {
    TraceDataset dataset;
    RegressionHead head;
    double pivot_ewma = 0.0;
    bool dirty = false;        // reservoir changed since the last train()
    std::uint64_t last_used = 0;

    ShapeModel(std::size_t capacity, std::uint64_t seed)
        : dataset(capacity, seed) {}
  };

  ShapeModel& shape_model(std::uint64_t signature);
  void train_shape(std::uint64_t signature, ShapeModel& model);

  OracleConfig config_;
  std::map<std::uint64_t, ShapeModel> shapes_;
  std::uint64_t clock_ = 0;
  Stats stats_;
};

}  // namespace prete::ml
