#pragma once

#include <cmath>

#include "optical/features.h"

namespace prete::ml {

// True when every continuous feature is finite. Learned predictors use this
// as an input guard: NaN/inf features from corrupted telemetry must yield a
// static prior, never propagate through the model arithmetic.
inline bool features_finite(const optical::DegradationFeatures& f) {
  return std::isfinite(f.length_km) && std::isfinite(f.hour) &&
         std::isfinite(f.degree_db) && std::isfinite(f.gradient_db) &&
         std::isfinite(f.fluctuation);
}

// Common interface of every failure-probability model compared in Table 5 /
// Figure 15: TeaVar's static probability, the statistic model, the decision
// tree, and PreTE's neural network.
class FailurePredictor {
 public:
  virtual ~FailurePredictor() = default;

  // Estimated probability that the degradation evolves into a cut within
  // the next TE period (p_NN in Eqn. 1).
  virtual double predict(const optical::DegradationFeatures& features) const = 0;

  // Hard label via argmax over {normal, failure} (§4.1.1).
  int classify(const optical::DegradationFeatures& features) const {
    return predict(features) >= 0.5 ? 1 : 0;
  }
};

}  // namespace prete::ml
