#pragma once

#include "optical/features.h"

namespace prete::ml {

// Common interface of every failure-probability model compared in Table 5 /
// Figure 15: TeaVar's static probability, the statistic model, the decision
// tree, and PreTE's neural network.
class FailurePredictor {
 public:
  virtual ~FailurePredictor() = default;

  // Estimated probability that the degradation evolves into a cut within
  // the next TE period (p_NN in Eqn. 1).
  virtual double predict(const optical::DegradationFeatures& features) const = 0;

  // Hard label via argmax over {normal, failure} (§4.1.1).
  int classify(const optical::DegradationFeatures& features) const {
    return predict(features) >= 0.5 ? 1 : 0;
  }
};

}  // namespace prete::ml
