#include "ml/logistic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prete::ml {

LogisticPredictor::LogisticPredictor(FeatureEncoder encoder,
                                     LogisticConfig config)
    : encoder_(std::move(encoder)), config_(config) {
  const auto& mask = encoder_.mask();
  input_size_ = encoder_.dense_size();
  if (mask.region) input_size_ += encoder_.num_regions();
  if (mask.fiber_id) input_size_ += encoder_.num_fibers();
  if (mask.vendor) input_size_ += encoder_.num_vendors();
  if (input_size_ == 0) throw std::invalid_argument("all features masked out");
  weights_.assign(static_cast<std::size_t>(input_size_) + 1, 0.0);
}

std::vector<double> LogisticPredictor::encode(
    const optical::DegradationFeatures& f) const {
  std::vector<double> x = encoder_.encode_dense(f);
  x.resize(static_cast<std::size_t>(input_size_), 0.0);
  const auto& mask = encoder_.mask();
  std::size_t offset = static_cast<std::size_t>(encoder_.dense_size());
  const auto idx = encoder_.encode_categorical(f);
  if (mask.region) {
    if (idx.region >= 0) x[offset + static_cast<std::size_t>(idx.region)] = 1.0;
    offset += static_cast<std::size_t>(encoder_.num_regions());
  }
  if (mask.fiber_id) {
    if (idx.fiber >= 0) x[offset + static_cast<std::size_t>(idx.fiber)] = 1.0;
    offset += static_cast<std::size_t>(encoder_.num_fibers());
  }
  if (mask.vendor) {
    if (idx.vendor >= 0) x[offset + static_cast<std::size_t>(idx.vendor)] = 1.0;
  }
  return x;
}

double LogisticPredictor::train(const Dataset& raw_train) {
  util::Rng rng(config_.seed);
  const Dataset train = config_.oversample_minority
                            ? oversample(raw_train, rng)
                            : raw_train;
  if (train.examples.empty()) throw std::invalid_argument("empty training set");

  // Pre-encode once.
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  x.reserve(train.examples.size());
  for (const Example& e : train.examples) {
    x.push_back(encode(e.features));
    y.push_back(e.label);
  }
  const double inv_n = 1.0 / static_cast<double>(x.size());

  double nll = 0.0;
  std::vector<double> grad(weights_.size());
  for (int it = 0; it < config_.iterations; ++it) {
    std::fill(grad.begin(), grad.end(), 0.0);
    nll = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      double z = weights_.back();
      for (std::size_t j = 0; j < x[i].size(); ++j) {
        z += weights_[j] * x[i][j];
      }
      const double p = 1.0 / (1.0 + std::exp(-z));
      nll -= y[i] ? std::log(std::max(p, 1e-12))
                  : std::log(std::max(1.0 - p, 1e-12));
      const double err = (p - static_cast<double>(y[i])) * inv_n;
      for (std::size_t j = 0; j < x[i].size(); ++j) {
        grad[j] += err * x[i][j];
      }
      grad.back() += err;
    }
    for (std::size_t j = 0; j + 1 < weights_.size(); ++j) {
      weights_[j] -= config_.learning_rate * (grad[j] + config_.l2 * weights_[j]);
    }
    weights_.back() -= config_.learning_rate * grad.back();
  }
  return nll * inv_n;
}

double LogisticPredictor::predict(
    const optical::DegradationFeatures& f) const {
  // Same input/output guards as MlpPredictor::predict: corrupted telemetry
  // features yield the static prior, never a NaN probability.
  if (!features_finite(f)) {
    return std::clamp(config_.static_prior, 0.0, 1.0);
  }
  const std::vector<double> x = encode(f);
  double z = weights_.back();
  for (std::size_t j = 0; j < x.size(); ++j) z += weights_[j] * x[j];
  const double p = 1.0 / (1.0 + std::exp(-z));
  if (!std::isfinite(p)) return std::clamp(config_.static_prior, 0.0, 1.0);
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace prete::ml
