#include "ml/metrics.h"

#include <cmath>

namespace prete::ml {

double Metrics::precision() const {
  return tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                     : 0.0;
}

double Metrics::recall() const {
  return tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                     : 0.0;
}

double Metrics::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r > 0 ? 2.0 * p * r / (p + r) : 0.0;
}

double Metrics::accuracy() const {
  const int total = tp + fp + tn + fn;
  return total > 0 ? static_cast<double>(tp + tn) / static_cast<double>(total)
                   : 0.0;
}

Metrics evaluate(const FailurePredictor& predictor, const Dataset& test) {
  Metrics m;
  for (const Example& e : test.examples) {
    const int predicted = predictor.classify(e.features);
    if (predicted && e.label) {
      ++m.tp;
    } else if (predicted && !e.label) {
      ++m.fp;
    } else if (!predicted && e.label) {
      ++m.fn;
    } else {
      ++m.tn;
    }
  }
  return m;
}

std::vector<double> probability_errors(const FailurePredictor& predictor,
                                       const Dataset& test) {
  std::vector<double> errors;
  errors.reserve(test.examples.size());
  for (const Example& e : test.examples) {
    errors.push_back(std::abs(predictor.predict(e.features) - e.true_probability));
  }
  return errors;
}

}  // namespace prete::ml
