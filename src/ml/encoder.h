#pragma once

#include <vector>

#include "ml/dataset.h"
#include "optical/features.h"

namespace prete::ml {

// Which inputs reach the model — used for the Table 8 leave-one-feature-out
// ablation ("NN w/o x").
struct FeatureMask {
  bool time = true;
  bool degree = true;
  bool gradient = true;
  bool fluctuation = true;
  bool length = true;
  bool region = true;
  bool fiber_id = true;
  bool vendor = true;
};

// Encodes degradation features into the MLP's inputs following Appendix
// A.2: degree/gradient/fluctuation/length min-max scaled into [0,1]; time
// one-hot by hour; region/fiber-id/vendor passed as embedding indices.
class FeatureEncoder {
 public:
  explicit FeatureEncoder(FeatureMask mask = {}) : mask_(mask) {}

  // Learns the min-max ranges and category cardinalities from training data.
  void fit(const Dataset& train);

  // Dense input: [scaled continuous ...][hour one-hot (24)].
  std::vector<double> encode_dense(const optical::DegradationFeatures& f) const;

  struct CategoricalIndices {
    int region = -1;   // -1 = masked out
    int fiber = -1;
    int vendor = -1;
  };
  CategoricalIndices encode_categorical(const optical::DegradationFeatures& f) const;

  int dense_size() const;
  int num_regions() const { return num_regions_; }
  int num_fibers() const { return num_fibers_; }
  int num_vendors() const { return num_vendors_; }
  const FeatureMask& mask() const { return mask_; }

 private:
  struct Range {
    double min = 0.0;
    double max = 1.0;
    double scale(double v) const;
  };

  FeatureMask mask_;
  Range degree_;
  Range gradient_;
  Range fluctuation_;
  Range length_;
  int num_regions_ = 1;
  int num_fibers_ = 1;
  int num_vendors_ = 1;
  bool fitted_ = false;
};

}  // namespace prete::ml
