#include "ml/encoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prete::ml {

double FeatureEncoder::Range::scale(double v) const {
  // Neutral mid-range encoding for corrupt inputs: std::clamp would pass
  // NaN straight through into the model.
  if (!std::isfinite(v)) return 0.5;
  if (max <= min) return 0.0;
  return std::clamp((v - min) / (max - min), 0.0, 1.0);
}

void FeatureEncoder::fit(const Dataset& train) {
  if (train.examples.empty()) throw std::invalid_argument("empty training set");
  auto init = [](Range& r, double v) {
    r.min = v;
    r.max = v;
  };
  const auto& first = train.examples.front().features;
  init(degree_, first.degree_db);
  init(gradient_, first.gradient_db);
  init(fluctuation_, first.fluctuation);
  init(length_, first.length_km);
  num_regions_ = 1;
  num_fibers_ = 1;
  num_vendors_ = 1;
  for (const Example& e : train.examples) {
    const auto& f = e.features;
    degree_.min = std::min(degree_.min, f.degree_db);
    degree_.max = std::max(degree_.max, f.degree_db);
    gradient_.min = std::min(gradient_.min, f.gradient_db);
    gradient_.max = std::max(gradient_.max, f.gradient_db);
    fluctuation_.min = std::min(fluctuation_.min, f.fluctuation);
    fluctuation_.max = std::max(fluctuation_.max, f.fluctuation);
    length_.min = std::min(length_.min, f.length_km);
    length_.max = std::max(length_.max, f.length_km);
    num_regions_ = std::max(num_regions_, f.region + 1);
    num_fibers_ = std::max(num_fibers_, f.fiber_id + 1);
    num_vendors_ = std::max(num_vendors_, f.vendor + 1);
  }
  fitted_ = true;
}

int FeatureEncoder::dense_size() const {
  int n = 0;
  if (mask_.degree) ++n;
  if (mask_.gradient) ++n;
  if (mask_.fluctuation) ++n;
  if (mask_.length) ++n;
  if (mask_.time) n += 24;
  return n;
}

std::vector<double> FeatureEncoder::encode_dense(
    const optical::DegradationFeatures& f) const {
  if (!fitted_) throw std::logic_error("encoder not fitted");
  std::vector<double> x;
  x.reserve(static_cast<std::size_t>(dense_size()));
  if (mask_.degree) x.push_back(degree_.scale(f.degree_db));
  if (mask_.gradient) x.push_back(gradient_.scale(f.gradient_db));
  if (mask_.fluctuation) x.push_back(fluctuation_.scale(f.fluctuation));
  if (mask_.length) x.push_back(length_.scale(f.length_km));
  if (mask_.time) {
    // One-hot hour of day (Appendix A.2). Clamp in double space before the
    // int cast: casting a NaN or out-of-int-range floor result is UB.
    const double h_clamped =
        std::isfinite(f.hour) ? std::clamp(std::floor(f.hour), 0.0, 23.0) : 0.0;
    const int hour = static_cast<int>(h_clamped);
    for (int h = 0; h < 24; ++h) x.push_back(h == hour ? 1.0 : 0.0);
  }
  return x;
}

FeatureEncoder::CategoricalIndices FeatureEncoder::encode_categorical(
    const optical::DegradationFeatures& f) const {
  if (!fitted_) throw std::logic_error("encoder not fitted");
  CategoricalIndices idx;
  if (mask_.region) idx.region = std::clamp(f.region, 0, num_regions_ - 1);
  if (mask_.fiber_id) idx.fiber = std::clamp(f.fiber_id, 0, num_fibers_ - 1);
  if (mask_.vendor) idx.vendor = std::clamp(f.vendor, 0, num_vendors_ - 1);
  return idx;
}

}  // namespace prete::ml
