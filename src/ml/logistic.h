#pragma once

#include "ml/dataset.h"
#include "ml/encoder.h"
#include "ml/predictor.h"

namespace prete::ml {

// Logistic regression over the encoded dense features plus one-hot
// categorical indicators. A natural mid-point between the decision tree and
// the MLP: linear in the features, no learned embeddings — it can learn
// per-fiber intercepts but not feature interactions. Trained with full-batch
// gradient descent + L2.
struct LogisticConfig {
  double learning_rate = 0.5;
  double l2 = 1e-4;
  int iterations = 400;
  bool oversample_minority = true;
  std::uint64_t seed = 1;
  // Fallback P(failure) when an input feature is non-finite (same contract
  // as MlpConfig::static_prior).
  double static_prior = 0.4;
};

class LogisticPredictor : public FailurePredictor {
 public:
  explicit LogisticPredictor(FeatureEncoder encoder, LogisticConfig config = {});

  // Returns the final mean training NLL.
  double train(const Dataset& train);

  double predict(const optical::DegradationFeatures& features) const override;

 private:
  std::vector<double> encode(const optical::DegradationFeatures& f) const;

  FeatureEncoder encoder_;
  LogisticConfig config_;
  int input_size_ = 0;
  std::vector<double> weights_;  // last entry is the bias
};

}  // namespace prete::ml
