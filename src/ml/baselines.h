#pragma once

#include <map>
#include <memory>
#include <vector>

#include "ml/dataset.h"
#include "ml/predictor.h"

namespace prete::ml {

// TeaVar's naive model (Table 5 "Teavar"): ignores the degradation signal
// entirely and returns the static per-fiber failure probability p_i, which
// is always far below 0.5 — so it never predicts failure (P = R ~ 0).
class TeaVarStaticPredictor : public FailurePredictor {
 public:
  // static_probability: per-fiber p_i (uniform fallback for unseen fibers).
  explicit TeaVarStaticPredictor(std::map<int, double> static_probability,
                                 double fallback = 0.001);

  double predict(const optical::DegradationFeatures& features) const override;

 private:
  std::map<int, double> static_probability_;
  double fallback_;
};

// The "Statistic" model of Table 5: per-fiber empirical failure rate after
// degradation, with Laplace smoothing toward the global rate.
class StatisticPredictor : public FailurePredictor {
 public:
  explicit StatisticPredictor(double smoothing = 5.0) : smoothing_(smoothing) {}

  void train(const Dataset& train);
  double predict(const optical::DegradationFeatures& features) const override;

 private:
  double smoothing_;
  double global_rate_ = 0.4;
  std::map<int, std::pair<int, int>> fiber_counts_;  // fiber -> (fail, total)
};

// CART decision tree over the numeric feature vector (hour, degree,
// gradient, fluctuation, length, region, vendor, fiber-id). Gini impurity,
// depth-limited — the Table 5 "DT" baseline.
struct DecisionTreeConfig {
  int max_depth = 5;
  int min_samples_leaf = 20;
};

class DecisionTreePredictor : public FailurePredictor {
 public:
  explicit DecisionTreePredictor(DecisionTreeConfig config = {})
      : config_(config) {}

  void train(const Dataset& train);
  double predict(const optical::DegradationFeatures& features) const override;

  int node_count() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    int feature = -1;        // -1 = leaf
    double threshold = 0.0;  // go left if x[feature] <= threshold
    int left = -1;
    int right = -1;
    double probability = 0.0;  // leaf failure probability
  };

  static std::vector<double> to_vector(const optical::DegradationFeatures& f);
  int build(std::vector<int>& indices, const std::vector<std::vector<double>>& x,
            const std::vector<int>& y, int depth);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
};

// Nature itself (the oracle of Figure 15): returns the true conditional
// probability attached to the example. Only usable on simulated data where
// the ground truth is known; keyed by exact feature lookup.
class OraclePredictor : public FailurePredictor {
 public:
  explicit OraclePredictor(const Dataset& reference);
  double predict(const optical::DegradationFeatures& features) const override;

 private:
  // Keyed by (fiber, degree, gradient) which is unique in practice for
  // simulated events.
  std::map<std::tuple<int, double, double>, double> lookup_;
};

}  // namespace prete::ml
