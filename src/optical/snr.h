#pragma once

#include <vector>

namespace prete::optical {

// Optical signal-quality model: maps the transmission loss the telemetry
// system measures to an OSNR / Q-factor margin, the physical quantity that
// decides whether a wavelength still decodes error-free. The paper's
// degradation definition (3-10 dB above healthy, "signal still supports
// error-free decoding") corresponds to a shrinking-but-positive margin;
// beyond ~10 dB the margin goes negative and the link is effectively cut.
struct SnrModel {
  // OSNR of the healthy channel, dB.
  double healthy_osnr_db = 22.0;
  // Q-factor threshold for error-free decoding post-FEC, dB (typical 8.5).
  double q_threshold_db = 8.5;
  // Q ~ OSNR mapping offset for the modulation in use (dB).
  double q_offset_db = -3.0;

  // OSNR after `extra_loss_db` of additional span loss (1 dB of loss costs
  // ~1 dB of OSNR when the amplifier chain saturates).
  double osnr_db(double extra_loss_db) const;
  // Q-factor in dB for the given extra loss.
  double q_db(double extra_loss_db) const;
  // Remaining decoding margin (Q - threshold), dB.
  double margin_db(double extra_loss_db) const;
  // Whether the channel still decodes error-free.
  bool decodable(double extra_loss_db) const;
  // Largest extra loss that keeps the channel decodable.
  double loss_budget_db() const;
};

// Per-sample margin series for a loss trace relative to its healthy
// baseline — the SNR view of Figure 4(b)'s waveform.
std::vector<double> margin_series(const SnrModel& model,
                                  const std::vector<double>& loss_trace_db,
                                  double healthy_loss_db);

}  // namespace prete::optical
