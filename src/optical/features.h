#pragma once

namespace prete::optical {

// The feature vector of one fiber-degradation event, exactly the inputs of
// the paper's prediction model (§3.2 critical features + §4.1 intrinsic
// features; Appendix A.2 adds vendor).
struct DegradationFeatures {
  // Intrinsic fiber features.
  int fiber_id = 0;
  int region = 0;
  int vendor = 0;
  double length_km = 0.0;

  // Critical degradation features (§3.2).
  double hour = 0.0;            // local time of onset, [0, 24)
  double degree_db = 0.0;       // loss jump from healthy to degraded state
  double gradient_db = 0.0;     // mean |delta| between adjacent loss samples
  double fluctuation = 0.0;     // count of |delta| > 0.01 dB during the event
};

}  // namespace prete::optical
