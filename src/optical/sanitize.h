#pragma once

#include <cstddef>
#include <vector>

#include "optical/events.h"

namespace prete::optical {

// Physical plausibility ceiling for a transmission-loss sample. Real fibers
// never report more than ~25 dB even during a cut (kCutLossDb); anything
// past this is collector corruption, not signal.
inline constexpr double kAbsurdLossDb = 60.0;

// A run of this many bit-identical finite samples marks a stuck-at sensor:
// real loss readings carry thermal noise, so even a flat-line fiber jitters
// at the 0.01 dB level sample to sample.
inline constexpr std::size_t kStuckRunLength = 30;

// Machine-readable retryability verdict for a degraded telemetry window:
// whether asking the collector to redeliver could plausibly yield a usable
// window. The epoch pipeline's ingest retry policy keys on this — transient
// gaps are worth a bounded refetch, structurally poisoned windows are
// quarantined immediately so the retry budget is never burned re-ingesting
// a window that can only come back poisoned.
enum class RetryHint {
  kNone = 0,    // window is usable as delivered; nothing to retry
  // Loss of samples (drops, non-finite readings) dominates: the plant
  // signal behind the gaps may be fine, so a redelivery can succeed.
  kTransient,
  // The waveform itself is wrong — a stuck-at sensor or implausible
  // (negative / absurd) levels. Redelivering the same window reproduces the
  // same poison; do not re-ingest, react on static probabilities instead.
  kStructural,
};

const char* retry_hint_name(RetryHint hint);

// Quality verdict for one telemetry window, accumulated by sanitize_trace /
// assemble_window. The controller consults trusted() before feeding the
// window to detection and prediction; an untrusted window downgrades the
// pipeline to static failure probabilities instead of crashing or believing
// garbage.
struct TelemetryQuality {
  std::size_t total_samples = 0;
  std::size_t missing = 0;       // NaN on arrival
  std::size_t non_finite = 0;    // +/-inf converted to missing
  std::size_t implausible = 0;   // negative or > kAbsurdLossDb, -> missing
  std::size_t duplicates = 0;    // repeated timestamps (assemble_window)
  std::size_t out_of_order = 0;  // timestamp regressions (assemble_window)
  bool stuck_at = false;         // >= kStuckRunLength identical finite samples
  bool all_missing = false;      // nothing usable survived sanitization

  bool empty() const { return total_samples == 0; }

  // A window is trusted when it exists, carries live (non-stuck) signal, and
  // a majority of its samples survived sanitization. Untrusted windows are
  // still scannable (the detector skips NaN), but their features should not
  // reach the ML predictor.
  bool trusted() const {
    if (empty() || all_missing || stuck_at) return false;
    return (missing + non_finite + implausible) * 2 <= total_samples;
  }

  // The retry policy for this window (see RetryHint). Structural verdicts
  // win over transient ones: a window that is both gappy and stuck-at is
  // poisoned, not merely lossy.
  RetryHint retry_hint() const {
    if (empty()) return RetryHint::kTransient;  // nothing delivered at all
    if (stuck_at || implausible * 2 > total_samples) {
      return RetryHint::kStructural;
    }
    if (all_missing || !trusted()) return RetryHint::kTransient;
    return RetryHint::kNone;
  }
};

// Scrubs a raw loss trace in place of hand-written validity checks:
//   1. converts +/-inf to NaN (counted as non_finite),
//   2. converts negative or > kAbsurdLossDb samples to NaN (implausible),
//   3. flags stuck-at runs of >= kStuckRunLength identical finite samples,
//   4. fills interior NaN gaps via interpolate_missing (edge gaps hold the
//      nearest finite value; an all-NaN trace stays NaN and sets
//      all_missing).
// `quality`, when non-null, receives the verdict for the window.
std::vector<double> sanitize_trace(std::vector<double> trace,
                                   TelemetryQuality* quality = nullptr);

// One timestamped loss sample as delivered by a (possibly misbehaving)
// collector stream.
struct TimedSample {
  TimeSec t_sec = 0;
  double loss_db = 0.0;
};

// Rebuilds a dense window [t0, t0 + n * period_sec) from an unordered,
// possibly duplicated sample stream. Out-of-order arrivals are counted and
// sorted into place (stable, so among equal timestamps delivery order is
// kept); duplicate timestamps keep the LAST delivered value and are counted;
// samples outside the window are dropped silently; slots never delivered are
// NaN. The result is ready for sanitize_trace.
std::vector<double> assemble_window(const std::vector<TimedSample>& samples,
                                    TimeSec t0, std::size_t n,
                                    int period_sec = 1,
                                    TelemetryQuality* quality = nullptr);

}  // namespace prete::optical
