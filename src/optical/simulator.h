#pragma once

#include <vector>

#include "net/graph.h"
#include "optical/events.h"
#include "optical/fiber_model.h"
#include "util/rng.h"

namespace prete::optical {

inline constexpr double kTePeriodSec = 300.0;  // 5-minute TE epoch
inline constexpr double kDegradedThresholdDb = 3.0;   // OpTel degradation
inline constexpr double kCutThresholdDb = 10.0;       // OpTel cut
inline constexpr double kCutLossDb = 25.0;            // loss shown during a cut

struct SimulatorConfig {
  // Probability that a degradation-caused cut lands beyond the TE period
  // (the "late" bucket of Figure 5a), conditionally independent of the
  // within-period cut probability.
  double late_cut_prob = 0.12;
  // Repair time bounds in hours.
  double repair_hours_min = 2.0;
  double repair_hours_max = 12.0;
  // Lognormal duration of degradation episodes: median ~8 s so that 50%
  // last under 10 s (Figure 4a).
  double duration_mu = 2.08;   // ln(8)
  double duration_sigma = 1.1;
  // Telemetry imperfections: probability that a one-second sample is lost
  // (filled in by interpolation downstream, §3.1).
  double sample_loss_prob = 0.01;
  // Gaussian noise on healthy samples, dB.
  double noise_db = 0.02;
};

// Event-driven simulator of the whole fiber plant. Generates the ground
// truth event log over a horizon and can materialize per-second loss traces
// for any window (so that year-long simulations stay cheap while figure
// benches can still plot realistic waveforms).
class PlantSimulator {
 public:
  PlantSimulator(const net::Network& net, std::vector<FiberModelParams> params,
                 CutLogitModel logit = {}, SimulatorConfig config = {});

  // Simulates `horizon_sec` seconds of plant behaviour.
  EventLog simulate(TimeSec horizon_sec, util::Rng& rng) const;

  // Per-second transmission-loss samples for `fiber` over [t0, t1), given a
  // previously generated log. NaN marks lost samples.
  std::vector<double> loss_trace(const EventLog& log, net::FiberId fiber,
                                 TimeSec t0, TimeSec t1, util::Rng& rng) const;

  // Batched form: one trace per fiber over [t0, t1), sharded across the
  // runtime pool. Fiber f draws from stream split(f) of a root seeded by a
  // single draw from `rng`, so the result is bit-identical at any thread
  // count (same contract as simulate() and te::derive_statistics).
  std::vector<std::vector<double>> loss_traces(const EventLog& log, TimeSec t0,
                                               TimeSec t1,
                                               util::Rng& rng) const;

  const FiberModelParams& params(net::FiberId f) const {
    return params_.at(static_cast<std::size_t>(f));
  }
  const CutLogitModel& logit() const { return logit_; }
  const SimulatorConfig& config() const { return config_; }
  const net::Network& network() const { return net_; }

 private:
  const net::Network& net_;
  std::vector<FiberModelParams> params_;
  CutLogitModel logit_;
  SimulatorConfig config_;
};

// Resamples a one-second trace at a coarser granularity (every `period_sec`
// seconds), as traditional minute-level telemetry systems do (§8, Fig 20).
std::vector<double> resample_trace(const std::vector<double>& trace,
                                   int period_sec);

// Linear interpolation of NaN gaps (the paper "applies interpolation
// methods to complete the missing data", §3.1).
std::vector<double> interpolate_missing(std::vector<double> trace);

}  // namespace prete::optical
