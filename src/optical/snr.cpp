#include "optical/snr.h"

#include <cmath>

namespace prete::optical {

double SnrModel::osnr_db(double extra_loss_db) const {
  return healthy_osnr_db - std::max(extra_loss_db, 0.0);
}

double SnrModel::q_db(double extra_loss_db) const {
  return osnr_db(extra_loss_db) + q_offset_db;
}

double SnrModel::margin_db(double extra_loss_db) const {
  return q_db(extra_loss_db) - q_threshold_db;
}

bool SnrModel::decodable(double extra_loss_db) const {
  return margin_db(extra_loss_db) >= 0.0;
}

double SnrModel::loss_budget_db() const {
  return healthy_osnr_db + q_offset_db - q_threshold_db;
}

std::vector<double> margin_series(const SnrModel& model,
                                  const std::vector<double>& loss_trace_db,
                                  double healthy_loss_db) {
  std::vector<double> out;
  out.reserve(loss_trace_db.size());
  for (double loss : loss_trace_db) {
    const double extra = std::isnan(loss) ? 0.0 : loss - healthy_loss_db;
    out.push_back(model.margin_db(extra));
  }
  return out;
}

}  // namespace prete::optical
