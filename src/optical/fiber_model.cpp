#include "optical/fiber_model.h"

#include <algorithm>
#include <cmath>

#include "util/distributions.h"

namespace prete::optical {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

double CutLogitModel::probability(const DegradationFeatures& f,
                                  double fiber_effect) const {
  constexpr double kTwoPi = 6.283185307179586;
  const double time_term = std::cos(kTwoPi * f.hour / 24.0);
  const double degree_term = std::clamp((f.degree_db - 3.0) / 7.0, 0.0, 1.0);
  const double gradient_term = std::min(f.gradient_db, 1.0);
  const double fluct_term = std::min(f.fluctuation / 20.0, 1.0);
  const double logit = bias + fiber_effect + time_weight * time_term +
                       degree_weight * degree_term +
                       gradient_weight * gradient_term +
                       fluctuation_weight * fluct_term;
  return sigmoid(logit);
}

DegradationFeatures sample_degradation_features(const net::Fiber& fiber,
                                                double hour, util::Rng& rng) {
  DegradationFeatures f;
  f.fiber_id = fiber.id;
  f.region = fiber.region;
  f.vendor = fiber.vendor;
  f.length_km = fiber.length_km;
  f.hour = hour;
  // Degree: 3-10 dB per the degradation definition (§3.1), biased low.
  f.degree_db = 3.0 + 7.0 * std::pow(rng.next_double(), 1.5);
  // Gradient: heavy-tailed mean |delta| between adjacent samples. Aging
  // fibers produce slow, small gradients; mechanical stress produces large
  // ones.
  f.gradient_db = std::min(util::sample_lognormal(rng, -2.2, 1.0), 3.0);
  // Fluctuation: count of significant (>0.01 dB) adjacent changes; bursty.
  f.fluctuation = std::floor(util::sample_lognormal(rng, 1.3, 0.9));
  return f;
}

std::vector<FiberModelParams> build_plant_model(const net::Network& net,
                                                util::Rng& rng,
                                                const PlantModelConfig& config) {
  const util::Weibull weibull(config.weibull_shape, config.weibull_scale);
  std::vector<FiberModelParams> params;
  params.reserve(static_cast<std::size_t>(net.num_fibers()));
  for (net::FiberId f = 0; f < net.num_fibers(); ++f) {
    FiberModelParams p;
    p.degradation_prob_per_epoch = std::min(weibull.sample(rng), 0.05);
    // Linear degradation->cut relationship (Figure 12a): predictable cut
    // rate is mean_cut_given_degradation * p_d; total cut rate p_i follows
    // from alpha = predictable / total. Late (beyond-TE-period) cuts caused
    // by degradations count toward the total but not the predictable rate.
    const double predictable_rate =
        config.mean_cut_given_degradation * p.degradation_prob_per_epoch;
    const double late_rate = (1.0 - config.mean_cut_given_degradation) *
                             config.late_cut_prob *
                             p.degradation_prob_per_epoch;
    const double total_rate = predictable_rate / std::max(config.alpha, 1e-9);
    p.abrupt_cut_prob_per_epoch =
        std::max(total_rate - predictable_rate - late_rate, 0.0);
    p.fiber_effect = config.fiber_effect_sigma * util::sample_standard_normal(rng);
    // Healthy loss: ~0.2 dB/km attenuation before amplification, floored.
    p.healthy_loss_db = std::max(3.0, 0.02 * net.fiber(f).length_km);
    params.push_back(p);
  }
  return params;
}

}  // namespace prete::optical
