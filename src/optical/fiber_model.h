#pragma once

#include <vector>

#include "net/graph.h"
#include "optical/features.h"
#include "util/rng.h"

namespace prete::optical {

// Nature's generative model for one fiber: how often it degrades, what the
// degradation episodes look like, and how likely each episode is to evolve
// into a cut. This is the hidden process that PreTE's telemetry observes
// and its NN predictor has to learn.
struct FiberModelParams {
  // Probability of a degradation episode starting in a 5-minute TE epoch.
  // The paper draws this from Weibull(shape 0.8, scale 0.002) (§6.1).
  double degradation_prob_per_epoch = 0.002;
  // Rate of abrupt (unpredictable) cuts per epoch. Calibrated so that the
  // predictable fraction alpha is ~25% overall (§3.1).
  double abrupt_cut_prob_per_epoch = 0.0;
  // Per-fiber random effect in the cut logit; this is why "fiber ID plays
  // the most important role in failure prediction" (Appendix A.6).
  double fiber_effect = 0.0;
  // Baseline transmission loss in dB when healthy.
  double healthy_loss_db = 5.0;
};

// Coefficients of nature's conditional cut probability
// sigmoid(bias + fiber_effect + time + degree + gradient + fluctuation).
// The defaults are calibrated to reproduce Figure 6's failure-proportion
// curves: ~60% at midnight vs ~20% at 6am, increasing in degree, gradient
// and fluctuation, with the overall mean near 40% (§3.2).
struct CutLogitModel {
  // Calibrated so that the mean conditional probability is ~0.40 (§3.2) and
  // the Bayes-optimal classifier accuracy is ~0.82 — the paper's NN reaches
  // 0.81 precision/recall (Table 5), so nature must offer that headroom.
  double bias = -2.8;
  double time_weight = 1.7;        // applied to cos(2*pi*hour/24)
  double degree_weight = 2.6;      // applied to (degree-3)/7 in [0,1]
  double gradient_weight = 2.0;    // applied to min(gradient, 1.0)
  double fluctuation_weight = 2.2; // applied to saturating count / 20

  double probability(const DegradationFeatures& f, double fiber_effect) const;
};

// Samples the feature vector of a fresh degradation episode.
DegradationFeatures sample_degradation_features(const net::Fiber& fiber,
                                                double hour, util::Rng& rng);

// Builds per-fiber model parameters for a whole network following the
// paper's recipe: Weibull degradation probabilities, a linear
// degradation->cut relationship, and alpha = predictable fraction.
struct PlantModelConfig {
  double weibull_shape = 0.8;
  double weibull_scale = 0.002;
  // Predictable fraction of cuts (paper: ~25%).
  double alpha = 0.25;
  // Mean P(cut | degradation) (paper: ~40%).
  double mean_cut_given_degradation = 0.4;
  // Probability that a non-failing degradation still produces a late,
  // unpredictable cut (must match SimulatorConfig::late_cut_prob so the
  // alpha calibration stays exact).
  double late_cut_prob = 0.12;
  // Spread of the per-fiber random effect (log-odds). Large enough that
  // fiber identity is the single most informative feature (Appendix A.6).
  double fiber_effect_sigma = 1.6;
};

std::vector<FiberModelParams> build_plant_model(const net::Network& net,
                                                util::Rng& rng,
                                                const PlantModelConfig& config = {});

}  // namespace prete::optical
