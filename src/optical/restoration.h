#pragma once

#include <vector>

#include "net/graph.h"

namespace prete::optical {

// ARROW-style optical restoration [41]: when a fiber is cut, its wavelengths
// can be re-provisioned through spare regenerator/wavelength capacity on
// surviving fibers, partially or fully restoring the IP links that rode the
// cut fiber (after the ~8 s restoration latency).
//
// The model: every fiber has a wavelength budget proportional to its IP
// capacity plus a spare margin. Restoration routes each affected IP trunk
// along the shortest surviving fiber path with remaining spare wavelengths,
// consuming the spare capacity as it goes (first-fail-first-served).
struct RestorationConfig {
  // Spare wavelength capacity per fiber, as a fraction of its lit IP
  // capacity (ARROW provisions restoration-aware spare capacity).
  double spare_fraction = 0.5;
  // Restoration completes after this many seconds (the paper evaluates 8 s).
  double latency_sec = 8.0;
};

// The outcome for one cut fiber.
struct RestorationResult {
  // Restored fraction per IP link riding the cut fiber (parallel to
  // Network::links_on_fiber(cut)), in [0, 1].
  std::vector<double> restored_fraction;
  // Capacity-weighted average restored fraction.
  double total_restored_fraction = 0.0;
  // Fiber path (by id) chosen for each restored trunk; empty if stranded.
  std::vector<std::vector<net::FiberId>> paths;
};

class RestorationPlanner {
 public:
  RestorationPlanner(const net::Network& network, RestorationConfig config = {});

  // Plans restoration for a single cut fiber against fresh spare capacity.
  RestorationResult plan(net::FiberId cut) const;

  // Plans restoration for several simultaneous cuts; spare capacity is
  // shared, so later cuts may find it exhausted.
  std::vector<RestorationResult> plan(const std::vector<net::FiberId>& cuts) const;

  // Spare wavelength capacity (Gbps-equivalent) of a fiber.
  double spare_capacity_gbps(net::FiberId fiber) const;

  const RestorationConfig& config() const { return config_; }

 private:
  RestorationResult plan_with_budget(net::FiberId cut,
                                     std::vector<double>& spare) const;

  const net::Network& network_;
  RestorationConfig config_;
};

}  // namespace prete::optical
