#include "optical/detector.h"

#include <cmath>
#include <stdexcept>

namespace prete::optical {

DegradationDetector::DegradationDetector(double baseline_db,
                                         int sample_period_sec)
    : baseline_db_(baseline_db), sample_period_sec_(sample_period_sec) {
  if (sample_period_sec <= 0) {
    throw std::invalid_argument("sample period must be positive");
  }
}

FiberState DegradationDetector::classify(double loss_db) const {
  const double delta = loss_db - baseline_db_;
  if (delta >= kCutThresholdDb) return FiberState::kCut;
  if (delta >= kDegradedThresholdDb) return FiberState::kDegraded;
  return FiberState::kHealthy;
}

DetectionResult DegradationDetector::scan(const std::vector<double>& trace,
                                          TimeSec t0,
                                          const net::Fiber& fiber) const {
  DetectionResult result;
  bool in_degradation = false;
  bool in_cut = false;
  DetectedDegradation current;
  double gradient_sum = 0.0;
  int gradient_count = 0;
  int fluctuations = 0;
  double prev_loss = baseline_db_;

  auto finish_degradation = [&](TimeSec end) {
    current.end_sec = end;
    current.features.gradient_db =
        gradient_count > 0 ? gradient_sum / gradient_count : 0.0;
    current.features.fluctuation = fluctuations;
    result.degradations.push_back(current);
    in_degradation = false;
  };

  TimeSec last_finite_t = t0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double loss = trace[i];
    // Tolerate residual NaN/inf samples (interpolation cannot fill a fully
    // missing window, and a corrupted collector can emit infinities): the
    // sample is skipped without touching the episode state, so a NaN run
    // inside a degradation neither ends the episode nor pollutes its
    // gradient/fluctuation features.
    if (!std::isfinite(loss)) continue;
    const TimeSec t = t0 + static_cast<TimeSec>(i) * sample_period_sec_;
    const FiberState state = classify(loss);
    switch (state) {
      case FiberState::kHealthy:
        if (in_degradation) finish_degradation(t);
        in_cut = false;
        break;
      case FiberState::kDegraded:
        if (in_cut) break;  // still saturated by an ongoing cut
        if (!in_degradation) {
          in_degradation = true;
          current = DetectedDegradation{};
          current.onset_sec = t;
          // An episode already degraded at the first sample has no observed
          // onset: the measured onset/degree/hour describe the window edge.
          current.truncated_start = i == 0;
          current.features.fiber_id = fiber.id;
          current.features.region = fiber.region;
          current.features.vendor = fiber.vendor;
          current.features.length_km = fiber.length_km;
          current.features.hour = std::fmod(static_cast<double>(t) / 3600.0, 24.0);
          current.features.degree_db = loss - baseline_db_;
          gradient_sum = 0.0;
          gradient_count = 0;
          fluctuations = 0;
        } else {
          const double delta = std::abs(loss - prev_loss);
          gradient_sum += delta;
          ++gradient_count;
          // Fluctuations over 0.01 dB between adjacent values (§3.2,
          // filtering out noise).
          if (delta > 0.01) ++fluctuations;
        }
        break;
      case FiberState::kCut:
        if (in_degradation) finish_degradation(t);
        if (!in_cut) {
          result.cuts.push_back({t});
          in_cut = true;
        }
        break;
    }
    prev_loss = loss;
    last_finite_t = t;
  }
  if (in_degradation) {
    // The trace ran out mid-episode: stamp the last *observed* (finite)
    // sample's timestamp (not one period past it — nothing was measured
    // there) and flag the truncation so consumers know no recovery was seen.
    current.truncated_end = true;
    finish_degradation(last_finite_t);
  }
  return result;
}

}  // namespace prete::optical
