#include "optical/restoration.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace prete::optical {

RestorationPlanner::RestorationPlanner(const net::Network& network,
                                       RestorationConfig config)
    : network_(network), config_(config) {}

double RestorationPlanner::spare_capacity_gbps(net::FiberId fiber) const {
  return config_.spare_fraction * network_.fiber_ip_capacity_gbps(fiber) / 2.0;
  // /2: fiber_ip_capacity counts both directions; spare is per direction.
}

namespace {

// Dijkstra over the FIBER graph (undirected) between two nodes, using only
// fibers with at least `needed` spare capacity and excluding `banned`.
// Returns the fiber path or empty when unreachable.
std::vector<net::FiberId> spare_path(const net::Network& network,
                                     net::NodeId src, net::NodeId dst,
                                     const std::vector<double>& spare,
                                     double needed, net::FiberId banned) {
  const auto n = static_cast<std::size_t>(network.num_nodes());
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<net::FiberId> via(n, -1);
  using Entry = std::pair<double, net::NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.push({0.0, src});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == dst) break;
    for (const net::Fiber& fiber : network.fibers()) {
      if (fiber.id == banned) continue;
      if (spare[static_cast<std::size_t>(fiber.id)] + 1e-9 < needed) continue;
      net::NodeId next = -1;
      if (fiber.a == u) {
        next = fiber.b;
      } else if (fiber.b == u) {
        next = fiber.a;
      } else {
        continue;
      }
      const double nd = d + fiber.length_km + 1.0;
      if (nd < dist[static_cast<std::size_t>(next)]) {
        dist[static_cast<std::size_t>(next)] = nd;
        via[static_cast<std::size_t>(next)] = fiber.id;
        heap.push({nd, next});
      }
    }
  }
  if (via[static_cast<std::size_t>(dst)] < 0) return {};
  std::vector<net::FiberId> path;
  net::NodeId v = dst;
  while (v != src) {
    const net::FiberId f = via[static_cast<std::size_t>(v)];
    path.push_back(f);
    const net::Fiber& fiber = network.fiber(f);
    v = fiber.a == v ? fiber.b : fiber.a;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

RestorationResult RestorationPlanner::plan_with_budget(
    net::FiberId cut, std::vector<double>& spare) const {
  RestorationResult result;
  const net::Fiber& fiber = network_.fiber(cut);
  const auto& links = network_.links_on_fiber(cut);
  result.restored_fraction.assign(links.size(), 0.0);
  result.paths.resize(links.size());

  double restored_capacity = 0.0;
  double total_capacity = 0.0;
  for (std::size_t i = 0; i < links.size(); ++i) {
    const net::Link& link = network_.link(links[i]);
    total_capacity += link.capacity_gbps;
    // Find a spare path able to carry this trunk.
    const auto path = spare_path(network_, fiber.a, fiber.b, spare,
                                 link.capacity_gbps, cut);
    if (!path.empty()) {
      for (net::FiberId f : path) {
        spare[static_cast<std::size_t>(f)] -= link.capacity_gbps;
      }
      result.restored_fraction[i] = 1.0;
      result.paths[i] = path;
      restored_capacity += link.capacity_gbps;
      continue;
    }
    // Partial restoration: route whatever the bottleneck allows on the best
    // unconstrained spare path.
    const auto any_path = spare_path(network_, fiber.a, fiber.b, spare,
                                     1e-6, cut);
    if (any_path.empty()) continue;
    double bottleneck = std::numeric_limits<double>::infinity();
    for (net::FiberId f : any_path) {
      bottleneck = std::min(bottleneck, spare[static_cast<std::size_t>(f)]);
    }
    if (bottleneck <= 0.0) continue;
    const double carried = std::min(bottleneck, link.capacity_gbps);
    for (net::FiberId f : any_path) {
      spare[static_cast<std::size_t>(f)] -= carried;
    }
    result.restored_fraction[i] = carried / link.capacity_gbps;
    result.paths[i] = any_path;
    restored_capacity += carried;
  }
  result.total_restored_fraction =
      total_capacity > 0.0 ? restored_capacity / total_capacity : 0.0;
  return result;
}

RestorationResult RestorationPlanner::plan(net::FiberId cut) const {
  std::vector<double> spare(static_cast<std::size_t>(network_.num_fibers()));
  for (net::FiberId f = 0; f < network_.num_fibers(); ++f) {
    spare[static_cast<std::size_t>(f)] = spare_capacity_gbps(f);
  }
  return plan_with_budget(cut, spare);
}

std::vector<RestorationResult> RestorationPlanner::plan(
    const std::vector<net::FiberId>& cuts) const {
  std::vector<double> spare(static_cast<std::size_t>(network_.num_fibers()));
  for (net::FiberId f = 0; f < network_.num_fibers(); ++f) {
    spare[static_cast<std::size_t>(f)] = spare_capacity_gbps(f);
  }
  // Cut fibers contribute no spare.
  for (net::FiberId cut : cuts) spare[static_cast<std::size_t>(cut)] = 0.0;
  std::vector<RestorationResult> results;
  results.reserve(cuts.size());
  for (net::FiberId cut : cuts) {
    results.push_back(plan_with_budget(cut, spare));
  }
  return results;
}

}  // namespace prete::optical
