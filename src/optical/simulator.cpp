#include "optical/simulator.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>

#include "runtime/parallel.h"
#include "util/distributions.h"

namespace prete::optical {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}

double EventLog::predictable_fraction() const {
  if (cuts.empty()) return 0.0;
  int predictable = 0;
  for (const CutRecord& c : cuts) {
    if (c.predictable) ++predictable;
  }
  return static_cast<double>(predictable) / static_cast<double>(cuts.size());
}

double EventLog::degradation_failure_fraction() const {
  if (degradations.empty()) return 0.0;
  int failed = 0;
  for (const DegradationRecord& d : degradations) {
    if (d.led_to_cut) ++failed;
  }
  return static_cast<double>(failed) /
         static_cast<double>(degradations.size());
}

PlantSimulator::PlantSimulator(const net::Network& net,
                               std::vector<FiberModelParams> params,
                               CutLogitModel logit, SimulatorConfig config)
    : net_(net), params_(std::move(params)), logit_(logit), config_(config) {}

namespace {

// One fiber's slice of the event log; merged in fiber order after the
// parallel sweep so the global log never depends on scheduling.
struct FiberEvents {
  std::vector<DegradationRecord> degradations;
  std::vector<CutRecord> cuts;
};

}  // namespace

EventLog PlantSimulator::simulate(TimeSec horizon_sec, util::Rng& rng) const {
  EventLog log;
  log.horizon_sec = horizon_sec;
  const auto epochs = static_cast<TimeSec>(
      horizon_sec / static_cast<TimeSec>(kTePeriodSec));

  // Fibers shard over the runtime pool, each drawing from its own
  // index-derived stream (one draw from the caller's rng seeds the root) —
  // the same contract as te::derive_statistics, so the log is bit-identical
  // at any thread count and the caller's generator advances identically.
  const util::Rng root(rng.next_u64());
  const auto num_fibers = static_cast<std::size_t>(net_.num_fibers());
  std::vector<FiberEvents> per_fiber = runtime::parallel_map(
      num_fibers, [&](std::size_t fiber_index) {
    FiberEvents events;
    const auto f = static_cast<net::FiberId>(fiber_index);
    util::Rng fiber_rng = root.split(fiber_index);
    const FiberModelParams& p = params_[static_cast<std::size_t>(f)];
    TimeSec repaired_at = 0;       // fiber is down before this instant
    double last_degradation = -1;  // onset of the most recent degradation

    for (TimeSec epoch = 0; epoch < epochs; ++epoch) {
      const TimeSec epoch_start = epoch * static_cast<TimeSec>(kTePeriodSec);
      if (epoch_start < repaired_at) continue;  // under repair

      // Degradation episode?
      if (fiber_rng.bernoulli(p.degradation_prob_per_epoch)) {
        DegradationRecord rec;
        rec.fiber = f;
        rec.onset_sec =
            epoch_start + static_cast<TimeSec>(fiber_rng.uniform(0.0, kTePeriodSec - 10.0));
        rec.duration_sec = std::min(
            util::sample_lognormal(fiber_rng, config_.duration_mu,
                                   config_.duration_sigma),
            kTePeriodSec);
        const double hour =
            std::fmod(static_cast<double>(rec.onset_sec) / 3600.0, 24.0);
        rec.features =
            sample_degradation_features(net_.fiber(f), hour, fiber_rng);
        rec.true_cut_probability = logit_.probability(rec.features, p.fiber_effect);
        rec.led_to_cut = fiber_rng.bernoulli(rec.true_cut_probability);
        last_degradation = static_cast<double>(rec.onset_sec);

        if (rec.led_to_cut) {
          // Cut within the TE period: this is a predictable cut.
          rec.cut_delay_sec = fiber_rng.uniform(5.0, kTePeriodSec - 10.0);
          CutRecord cut;
          cut.fiber = f;
          cut.time_sec = rec.onset_sec + static_cast<TimeSec>(rec.cut_delay_sec);
          cut.repair_hours = fiber_rng.uniform(config_.repair_hours_min,
                                               config_.repair_hours_max);
          cut.predictable = true;
          cut.since_degradation_sec = rec.cut_delay_sec;
          repaired_at =
              cut.time_sec + static_cast<TimeSec>(cut.repair_hours * 3600.0);
          events.cuts.push_back(cut);
        } else if (fiber_rng.bernoulli(config_.late_cut_prob)) {
          // Degradation-related cut beyond the TE period (Figure 5a's
          // 300s..1e3s+ bucket): too late to count as predictable.
          const double delay = kTePeriodSec + util::sample_lognormal(fiber_rng,
                                                                     5.5, 0.8);
          CutRecord cut;
          cut.fiber = f;
          cut.time_sec = rec.onset_sec + static_cast<TimeSec>(delay);
          cut.repair_hours = fiber_rng.uniform(config_.repair_hours_min,
                                               config_.repair_hours_max);
          cut.predictable = false;
          cut.since_degradation_sec = delay;
          repaired_at =
              cut.time_sec + static_cast<TimeSec>(cut.repair_hours * 3600.0);
          events.cuts.push_back(cut);
        }
        events.degradations.push_back(std::move(rec));
        continue;  // at most one event per epoch per fiber
      }

      // Abrupt, unpredictable cut?
      if (fiber_rng.bernoulli(p.abrupt_cut_prob_per_epoch)) {
        CutRecord cut;
        cut.fiber = f;
        cut.time_sec =
            epoch_start + static_cast<TimeSec>(fiber_rng.uniform(0.0, kTePeriodSec));
        cut.repair_hours = fiber_rng.uniform(config_.repair_hours_min,
                                             config_.repair_hours_max);
        cut.predictable = false;
        cut.since_degradation_sec =
            last_degradation >= 0
                ? static_cast<double>(cut.time_sec) - last_degradation
                : -1.0;
        repaired_at =
            cut.time_sec + static_cast<TimeSec>(cut.repair_hours * 3600.0);
        events.cuts.push_back(cut);
      }
    }
    return events;
  });

  for (FiberEvents& events : per_fiber) {
    std::move(events.degradations.begin(), events.degradations.end(),
              std::back_inserter(log.degradations));
    std::move(events.cuts.begin(), events.cuts.end(),
              std::back_inserter(log.cuts));
  }

  // Global chronological order across fibers.
  std::sort(log.degradations.begin(), log.degradations.end(),
            [](const DegradationRecord& a, const DegradationRecord& b) {
              return a.onset_sec < b.onset_sec;
            });
  std::sort(log.cuts.begin(), log.cuts.end(),
            [](const CutRecord& a, const CutRecord& b) {
              return a.time_sec < b.time_sec;
            });
  return log;
}

std::vector<double> PlantSimulator::loss_trace(const EventLog& log,
                                               net::FiberId fiber, TimeSec t0,
                                               TimeSec t1,
                                               util::Rng& rng) const {
  const FiberModelParams& p = params_.at(static_cast<std::size_t>(fiber));
  const auto n = static_cast<std::size_t>(std::max<TimeSec>(t1 - t0, 0));
  std::vector<double> trace(n, p.healthy_loss_db);

  // Base noise.
  for (double& v : trace) v += config_.noise_db * util::sample_standard_normal(rng);

  // Overlay degradation waveforms.
  for (const DegradationRecord& d : log.degradations) {
    if (d.fiber != fiber) continue;
    const TimeSec start = std::max(d.onset_sec, t0);
    const TimeSec end =
        std::min(d.onset_sec + static_cast<TimeSec>(d.duration_sec) + 1, t1);
    if (start >= end) continue;
    // Waveform: jump by `degree`, then a random walk whose step size matches
    // the gradient feature and whose direction changes produce the
    // fluctuation count.
    double level = d.features.degree_db;
    for (TimeSec t = start; t < end; ++t) {
      const double flip_rate =
          std::min(d.features.fluctuation / std::max(d.duration_sec, 1.0), 1.0);
      if (rng.bernoulli(flip_rate)) {
        level += (rng.bernoulli(0.5) ? 1.0 : -1.0) * d.features.gradient_db;
      }
      level = std::clamp(level, kDegradedThresholdDb + 0.1,
                         kCutThresholdDb - 0.1);
      trace[static_cast<std::size_t>(t - t0)] = p.healthy_loss_db + level;
    }
  }

  // Overlay cuts (loss saturates until repair).
  for (const CutRecord& c : log.cuts) {
    if (c.fiber != fiber) continue;
    const TimeSec cut_end =
        c.time_sec + static_cast<TimeSec>(c.repair_hours * 3600.0);
    const TimeSec start = std::max(c.time_sec, t0);
    const TimeSec end = std::min(cut_end, t1);
    for (TimeSec t = start; t < end; ++t) {
      trace[static_cast<std::size_t>(t - t0)] = p.healthy_loss_db + kCutLossDb;
    }
  }

  // Telemetry sample loss.
  for (double& v : trace) {
    if (rng.bernoulli(config_.sample_loss_prob)) v = kNan;
  }
  return trace;
}

std::vector<std::vector<double>> PlantSimulator::loss_traces(
    const EventLog& log, TimeSec t0, TimeSec t1, util::Rng& rng) const {
  const util::Rng root(rng.next_u64());
  const auto num_fibers = static_cast<std::size_t>(net_.num_fibers());
  return runtime::parallel_map(num_fibers, [&](std::size_t f) {
    util::Rng fiber_rng = root.split(f);
    return loss_trace(log, static_cast<net::FiberId>(f), t0, t1, fiber_rng);
  });
}

std::vector<double> resample_trace(const std::vector<double>& trace,
                                   int period_sec) {
  std::vector<double> out;
  if (period_sec <= 0) return out;
  out.reserve(trace.size() / static_cast<std::size_t>(period_sec) + 1);
  for (std::size_t i = 0; i < trace.size();
       i += static_cast<std::size_t>(period_sec)) {
    out.push_back(trace[i]);
  }
  return out;
}

std::vector<double> interpolate_missing(std::vector<double> trace) {
  const std::size_t n = trace.size();
  std::size_t i = 0;
  while (i < n) {
    if (!std::isnan(trace[i])) {
      ++i;
      continue;
    }
    // Find the gap [i, j).
    std::size_t j = i;
    while (j < n && std::isnan(trace[j])) ++j;
    const bool has_left = i > 0;
    const bool has_right = j < n;
    if (has_left && has_right) {
      const double left = trace[i - 1];
      const double right = trace[j];
      const double span = static_cast<double>(j - i + 1);
      for (std::size_t k = i; k < j; ++k) {
        const double frac = static_cast<double>(k - i + 1) / span;
        trace[k] = left + (right - left) * frac;
      }
    } else if (has_left) {
      for (std::size_t k = i; k < j; ++k) trace[k] = trace[i - 1];
    } else if (has_right) {
      for (std::size_t k = i; k < j; ++k) trace[k] = trace[j];
    }
    i = j;
  }
  return trace;
}

}  // namespace prete::optical
