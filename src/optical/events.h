#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "optical/features.h"

namespace prete::optical {

// Seconds since the start of the observation window.
using TimeSec = std::int64_t;

// One observed fiber degradation episode with its ground truth outcome.
struct DegradationRecord {
  net::FiberId fiber = -1;
  TimeSec onset_sec = 0;
  double duration_sec = 0.0;
  DegradationFeatures features;
  // Ground truth: did this degradation evolve into a fiber cut, and if so
  // after how long (measured from onset)?
  bool led_to_cut = false;
  double cut_delay_sec = 0.0;
  // Nature's actual conditional cut probability for this event (hidden from
  // the predictors; used to score probability estimates, Figure 14).
  double true_cut_probability = 0.0;
};

// One fiber-cut event.
struct CutRecord {
  net::FiberId fiber = -1;
  TimeSec time_sec = 0;
  double repair_hours = 0.0;
  // Does a degradation precede this cut closely enough (within a TE period,
  // 5 minutes) to make it "predictable" per §3.1?
  bool predictable = false;
  // Seconds since the most recent degradation on this fiber (any distance);
  // the Figure 5(a) distribution.
  double since_degradation_sec = -1.0;
};

// Full ground-truth log of a simulated observation window.
struct EventLog {
  TimeSec horizon_sec = 0;
  std::vector<DegradationRecord> degradations;
  std::vector<CutRecord> cuts;

  // Fraction of cuts preceded by a degradation within the TE period (alpha).
  double predictable_fraction() const;
  // Fraction of degradations that evolve into cuts (~40% in the paper).
  double degradation_failure_fraction() const;
};

}  // namespace prete::optical
