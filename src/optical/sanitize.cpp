#include "optical/sanitize.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "optical/simulator.h"

namespace prete::optical {

const char* retry_hint_name(RetryHint hint) {
  switch (hint) {
    case RetryHint::kNone:
      return "none";
    case RetryHint::kTransient:
      return "transient";
    case RetryHint::kStructural:
      return "structural";
  }
  return "unknown";
}

std::vector<double> sanitize_trace(std::vector<double> trace,
                                   TelemetryQuality* quality) {
  TelemetryQuality local;
  TelemetryQuality& q = quality != nullptr ? *quality : local;
  q = TelemetryQuality{};
  q.total_samples = trace.size();

  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  std::size_t stuck_run = 0;
  double prev_finite = kNan;
  std::size_t usable = 0;
  for (double& s : trace) {
    if (std::isnan(s)) {
      ++q.missing;
      continue;
    }
    if (std::isinf(s)) {
      ++q.non_finite;
      s = kNan;
      continue;
    }
    if (s < 0.0 || s > kAbsurdLossDb) {
      ++q.implausible;
      s = kNan;
      continue;
    }
    ++usable;
    // Stuck-at detection runs on the surviving finite samples: holes do not
    // reset the run (a stuck sensor interleaved with drops is still stuck).
    if (!std::isnan(prev_finite) && s == prev_finite) {
      if (++stuck_run + 1 >= kStuckRunLength) q.stuck_at = true;
    } else {
      stuck_run = 0;
    }
    prev_finite = s;
  }
  q.all_missing = usable == 0;
  return interpolate_missing(std::move(trace));
}

std::vector<double> assemble_window(const std::vector<TimedSample>& samples,
                                    TimeSec t0, std::size_t n, int period_sec,
                                    TelemetryQuality* quality) {
  TelemetryQuality local;
  TelemetryQuality& q = quality != nullptr ? *quality : local;
  q = TelemetryQuality{};
  q.total_samples = n;

  if (period_sec <= 0) period_sec = 1;

  std::vector<TimedSample> ordered = samples;
  for (std::size_t i = 1; i < ordered.size(); ++i) {
    if (ordered[i].t_sec < ordered[i - 1].t_sec) ++q.out_of_order;
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TimedSample& a, const TimedSample& b) {
                     return a.t_sec < b.t_sec;
                   });

  std::vector<double> trace(n, std::numeric_limits<double>::quiet_NaN());
  std::vector<bool> filled(n, false);
  for (const TimedSample& s : ordered) {
    if (s.t_sec < t0) continue;
    const TimeSec offset = s.t_sec - t0;
    if (offset % period_sec != 0) continue;  // off-grid sample: drop
    const auto slot = static_cast<std::size_t>(offset / period_sec);
    if (slot >= n) continue;
    if (filled[slot]) ++q.duplicates;  // last delivered value wins
    trace[slot] = s.loss_db;
    filled[slot] = true;
  }
  return trace;
}

}  // namespace prete::optical
