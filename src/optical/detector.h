#pragma once

#include <optional>
#include <vector>

#include "net/graph.h"
#include "optical/events.h"
#include "optical/simulator.h"

namespace prete::optical {

enum class FiberState { kHealthy, kDegraded, kCut };

// A degradation episode reconstructed from a telemetry trace, including the
// four critical features of §3.2 measured from the waveform.
struct DetectedDegradation {
  TimeSec onset_sec = 0;
  TimeSec end_sec = 0;  // exclusive; end of the degraded run in the trace
  DegradationFeatures features;
  // The episode was already in progress at the first trace sample: onset_sec
  // is the window edge (not the true onset), degree_db is the walked noisy
  // level (not the onset step), and hour is measured at the window edge.
  // Downstream consumers (controller triggering, ML feature extraction)
  // should prefer episodes with a clean onset when one exists.
  bool truncated_start = false;
  // The trace ended while the episode was still degraded: end_sec is the
  // last observed sample's timestamp, not an observed recovery.
  bool truncated_end = false;
};

struct DetectedCut {
  TimeSec time_sec = 0;
};

struct DetectionResult {
  std::vector<DetectedDegradation> degradations;
  std::vector<DetectedCut> cuts;
};

// Streaming classifier over per-second (or coarser) loss samples, applying
// the OpTel thresholds: healthy < baseline+3 dB, degraded in [3, 10) dB
// above baseline, cut >= +10 dB. Missing samples should be interpolated
// before detection (interpolate_missing); residual non-finite samples — a
// fully missing window that interpolation could not fill, or corrupted
// collector output — are skipped without perturbing episode state, so an
// all-NaN or empty trace yields an empty DetectionResult rather than a
// throw.
class DegradationDetector {
 public:
  // `baseline_db` is the healthy transmission loss of the fiber;
  // `sample_period_sec` is the telemetry granularity (1 for OpTel-class
  // systems, 180+ for traditional collectors).
  DegradationDetector(double baseline_db, int sample_period_sec = 1);

  // Classifies one sample.
  FiberState classify(double loss_db) const;

  // Scans a trace starting at absolute time `t0` and extracts events. The
  // features (time/degree/gradient/fluctuation) are measured from the
  // waveform exactly as §3.2 defines them.
  DetectionResult scan(const std::vector<double>& trace, TimeSec t0,
                       const net::Fiber& fiber) const;

 private:
  double baseline_db_;
  int sample_period_sec_;
};

}  // namespace prete::optical
