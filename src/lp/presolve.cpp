#include "lp/presolve.h"

#include <cmath>
#include <stdexcept>

#include "lp/simplex.h"

namespace prete::lp {

std::vector<double> PresolveResult::restore(
    const std::vector<double>& reduced_x) const {
  std::vector<double> x(static_cast<std::size_t>(original_variables), 0.0);
  for (int j = 0; j < original_variables; ++j) {
    const int mapped = variable_map[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(j)] =
        mapped >= 0 ? reduced_x[static_cast<std::size_t>(mapped)]
                    : fixed_value[static_cast<std::size_t>(j)];
  }
  return x;
}

PresolveResult presolve(const Model& model) {
  PresolveResult result;
  result.original_variables = model.num_variables();
  result.variable_map.assign(static_cast<std::size_t>(model.num_variables()), -1);
  result.fixed_value.assign(static_cast<std::size_t>(model.num_variables()), 0.0);
  result.reduced.set_sense(model.sense());

  constexpr double kTol = 1e-9;

  // Working bounds: tightened by singleton rows before variables are built.
  std::vector<double> lower(static_cast<std::size_t>(model.num_variables()));
  std::vector<double> upper(static_cast<std::size_t>(model.num_variables()));
  std::vector<bool> used(static_cast<std::size_t>(model.num_variables()), false);
  for (int j = 0; j < model.num_variables(); ++j) {
    lower[static_cast<std::size_t>(j)] = model.variable(j).lower;
    upper[static_cast<std::size_t>(j)] = model.variable(j).upper;
  }

  // Pass 1: singleton rows become bound tightenings; note used variables.
  std::vector<bool> keep_row(static_cast<std::size_t>(model.num_rows()), true);
  for (int i = 0; i < model.num_rows(); ++i) {
    const Row& row = model.row(i);
    // Count structural nonzeros.
    int nonzeros = 0;
    const Coefficient* only = nullptr;
    for (const Coefficient& c : row.coefficients) {
      if (c.value != 0.0) {
        ++nonzeros;
        only = &c;
      }
    }
    if (nonzeros == 0) {
      // Empty row: constant constraint.
      const bool ok = (row.type == RowType::kLessEqual && 0.0 <= row.rhs + kTol) ||
                      (row.type == RowType::kGreaterEqual && 0.0 >= row.rhs - kTol) ||
                      (row.type == RowType::kEqual && std::abs(row.rhs) <= kTol);
      if (!ok) {
        result.infeasible = true;
        return result;
      }
      keep_row[static_cast<std::size_t>(i)] = false;
      continue;
    }
    if (nonzeros == 1) {
      // a*x {<=,>=,=} b  ->  bound on x.
      const auto j = static_cast<std::size_t>(only->var);
      const double bound = row.rhs / only->value;
      const bool flips = only->value < 0.0;
      switch (row.type) {
        case RowType::kLessEqual:
          if (flips) {
            lower[j] = std::max(lower[j], bound);
          } else {
            upper[j] = std::min(upper[j], bound);
          }
          break;
        case RowType::kGreaterEqual:
          if (flips) {
            upper[j] = std::min(upper[j], bound);
          } else {
            lower[j] = std::max(lower[j], bound);
          }
          break;
        case RowType::kEqual:
          lower[j] = std::max(lower[j], bound);
          upper[j] = std::min(upper[j], bound);
          break;
      }
      if (lower[j] > upper[j] + kTol) {
        result.infeasible = true;
        return result;
      }
      keep_row[static_cast<std::size_t>(i)] = false;
      // The variable still exists (it may appear in other rows).
      used[j] = true;
      continue;
    }
    for (const Coefficient& c : row.coefficients) {
      if (c.value != 0.0) used[static_cast<std::size_t>(c.var)] = true;
    }
  }

  // Pass 2: build the reduced variable set.
  const double sense_sign = model.sense() == Sense::kMaximize ? -1.0 : 1.0;
  for (int j = 0; j < model.num_variables(); ++j) {
    const auto js = static_cast<std::size_t>(j);
    const Variable& v = model.variable(j);
    if (std::abs(upper[js] - lower[js]) <= kTol) {
      // Fixed: substitute everywhere.
      result.fixed_value[js] = 0.5 * (lower[js] + upper[js]);
      continue;
    }
    if (!used[js]) {
      // Appears in no surviving row: sits at its cost-optimal bound.
      const double c = sense_sign * v.objective;
      double x;
      if (c > kTol) {
        x = lower[js];
      } else if (c < -kTol) {
        x = upper[js];
      } else {
        x = std::isfinite(lower[js]) ? lower[js]
                                     : (std::isfinite(upper[js]) ? upper[js] : 0.0);
      }
      if (!std::isfinite(x)) {
        // Unbounded empty column: leave it in the model so the solver
        // reports unboundedness properly.
        result.variable_map[js] =
            v.is_integer
                ? result.reduced.add_integer(lower[js], upper[js], v.objective,
                                             v.name)
                : result.reduced.add_variable(lower[js], upper[js],
                                              v.objective, v.name);
        continue;
      }
      result.fixed_value[js] = x;
      continue;
    }
    // Integrality survives reduction: branch-and-bound presolves its root
    // model and must still see which reduced columns need branching.
    result.variable_map[js] =
        v.is_integer
            ? result.reduced.add_integer(lower[js], upper[js], v.objective,
                                         v.name)
            : result.reduced.add_variable(lower[js], upper[js], v.objective,
                                          v.name);
  }

  // Pass 3: rebuild surviving rows with substituted fixed variables.
  for (int i = 0; i < model.num_rows(); ++i) {
    if (!keep_row[static_cast<std::size_t>(i)]) continue;
    const Row& row = model.row(i);
    Row out;
    out.type = row.type;
    out.rhs = row.rhs;
    out.name = row.name;
    for (const Coefficient& c : row.coefficients) {
      if (c.value == 0.0) continue;
      const int mapped = result.variable_map[static_cast<std::size_t>(c.var)];
      if (mapped >= 0) {
        out.coefficients.push_back({mapped, c.value});
      } else {
        out.rhs -= c.value * result.fixed_value[static_cast<std::size_t>(c.var)];
      }
    }
    if (out.coefficients.empty()) {
      const bool ok =
          (out.type == RowType::kLessEqual && 0.0 <= out.rhs + kTol) ||
          (out.type == RowType::kGreaterEqual && 0.0 >= out.rhs - kTol) ||
          (out.type == RowType::kEqual && std::abs(out.rhs) <= kTol);
      if (!ok) {
        result.infeasible = true;
        return result;
      }
      continue;
    }
    result.reduced.add_row(std::move(out));
  }
  return result;
}

Solution solve_with_presolve(const Model& model, const SimplexOptions& options) {
  const PresolveResult pre = presolve(model);
  if (pre.infeasible) {
    Solution out;
    out.status = SolveStatus::kInfeasible;
    return out;
  }
  Solution reduced = SimplexSolver(options).solve(pre.reduced);
  if (reduced.status != SolveStatus::kOptimal) return reduced;
  Solution out;
  out.status = SolveStatus::kOptimal;
  out.iterations = reduced.iterations;
  out.x = pre.restore(reduced.x);
  out.objective = model.objective_value(out.x);
  return out;
}

}  // namespace prete::lp
