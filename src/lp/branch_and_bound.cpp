#include "lp/branch_and_bound.h"

#include <cmath>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

namespace prete::lp {

namespace {

struct Node {
  // Extra bounds imposed by branching: (var, lower, upper).
  std::vector<std::tuple<int, double, double>> bounds;
  double relaxation_bound;  // parent relaxation objective (minimization form)
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    return a.relaxation_bound > b.relaxation_bound;  // best-first
  }
};

int most_fractional(const Model& model, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_frac = tol;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double frac = std::abs(v - std::round(v));
    if (frac > best_frac) {
      best_frac = frac;
      best = j;
    }
  }
  return best;
}

}  // namespace

Solution BranchAndBound::solve(const Model& model) const {
  SimplexSolver simplex(options_.simplex);
  if (!model.has_integers()) return simplex.solve(model);

  const double sense_sign = model.sense() == Sense::kMaximize ? -1.0 : 1.0;

  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  double incumbent_value = kInfinity;  // minimization form

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  open.push({{}, -kInfinity});
  int nodes = 0;
  bool hit_node_limit = false;

  Model scratch = model;
  while (!open.empty() && nodes < options_.max_nodes) {
    Node node = open.top();
    open.pop();
    ++nodes;
    if (node.relaxation_bound >= incumbent_value - options_.gap_tol *
                                       (1.0 + std::abs(incumbent_value))) {
      continue;  // cannot improve
    }

    // Apply branching bounds on top of the base model.
    for (int j = 0; j < model.num_variables(); ++j) {
      const Variable& v = model.variable(j);
      scratch.set_bounds(j, v.lower, v.upper);
    }
    bool conflict = false;
    for (const auto& [var, lo, hi] : node.bounds) {
      const Variable& v = scratch.variable(var);
      const double new_lo = std::max(v.lower, lo);
      const double new_hi = std::min(v.upper, hi);
      if (new_lo > new_hi) {
        conflict = true;
        break;
      }
      scratch.set_bounds(var, new_lo, new_hi);
    }
    if (conflict) continue;

    const Solution relax = simplex.solve(scratch);
    if (relax.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation at the root means the MIP itself may be
      // unbounded; report it rather than silently pruning.
      if (node.bounds.empty()) {
        Solution out;
        out.status = SolveStatus::kUnbounded;
        return out;
      }
      continue;
    }
    if (relax.status != SolveStatus::kOptimal) continue;
    const double relax_value = sense_sign * relax.objective;
    if (relax_value >= incumbent_value - options_.gap_tol *
                           (1.0 + std::abs(incumbent_value))) {
      continue;
    }

    const int branch_var =
        most_fractional(model, relax.x, options_.integrality_tol);
    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent = relax;
      incumbent_value = relax_value;
      continue;
    }

    const double v = relax.x[static_cast<std::size_t>(branch_var)];
    Node down = node;
    down.relaxation_bound = relax_value;
    down.bounds.emplace_back(branch_var, -kInfinity, std::floor(v));
    Node up = node;
    up.relaxation_bound = relax_value;
    up.bounds.emplace_back(branch_var, std::ceil(v), kInfinity);
    open.push(std::move(down));
    open.push(std::move(up));
  }
  hit_node_limit = !open.empty() && nodes >= options_.max_nodes;

  if (incumbent.status == SolveStatus::kOptimal) {
    // Round integer variables exactly.
    for (int j = 0; j < model.num_variables(); ++j) {
      if (model.variable(j).is_integer) {
        incumbent.x[static_cast<std::size_t>(j)] =
            std::round(incumbent.x[static_cast<std::size_t>(j)]);
      }
    }
    if (hit_node_limit) incumbent.status = SolveStatus::kIterationLimit;
    return incumbent;
  }
  Solution out;
  out.status =
      hit_node_limit ? SolveStatus::kIterationLimit : SolveStatus::kInfeasible;
  return out;
}

}  // namespace prete::lp
