#include "lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <tuple>
#include <utility>
#include <vector>

#include "lp/presolve.h"
#include "runtime/parallel.h"

namespace prete::lp {

namespace {

struct Node {
  // Extra bounds imposed by branching: (var, lower, upper).
  std::vector<std::tuple<int, double, double>> bounds;
  double relaxation_bound;  // parent relaxation objective (minimization form)
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    return a.relaxation_bound > b.relaxation_bound;  // best-first
  }
};

// One relaxation scratch, reused across the nodes a wave slot evaluates.
// Instead of resetting every variable's bounds per node (O(n) per node, and
// n dwarfs the branch depth on the Benders masters), only the variables the
// previous node's branch path touched are restored from the base model.
struct Scratch {
  Model model;
  std::vector<int> touched;
};

struct NodeResult {
  bool conflict = false;
  Solution relax;
};

NodeResult evaluate_node(const Model& base, const SimplexSolver& simplex,
                         Scratch& scratch, const Node& node) {
  for (const int var : scratch.touched) {
    const Variable& v = base.variable(var);
    scratch.model.set_bounds(var, v.lower, v.upper);
  }
  scratch.touched.clear();

  NodeResult result;
  for (const auto& [var, lo, hi] : node.bounds) {
    const Variable& v = scratch.model.variable(var);
    const double new_lo = std::max(v.lower, lo);
    const double new_hi = std::min(v.upper, hi);
    if (new_lo > new_hi) {
      result.conflict = true;
      return result;
    }
    scratch.model.set_bounds(var, new_lo, new_hi);
    scratch.touched.push_back(var);
  }
  result.relax = simplex.solve(scratch.model);
  return result;
}

int most_fractional(const Model& model, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_frac = tol;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double frac = std::abs(v - std::round(v));
    if (frac > best_frac) {
      best_frac = frac;
      best = j;
    }
  }
  return best;
}

}  // namespace

Solution BranchAndBound::solve(const Model& model) const {
  if (!options_.simplex.presolve) return solve_direct(model);

  const PresolveResult pre = presolve(model);
  if (pre.infeasible) {
    Solution out;
    out.status = SolveStatus::kInfeasible;
    return out;
  }
  // An integer variable presolve fixed at a fractional value (a singleton
  // row forcing x = 0.5, say) makes the MIP infeasible — the reduced model
  // no longer carries the variable, so the check must happen here.
  for (int j = 0; j < model.num_variables(); ++j) {
    const auto js = static_cast<std::size_t>(j);
    if (!model.variable(j).is_integer || pre.variable_map[js] >= 0) continue;
    const double v = pre.fixed_value[js];
    if (std::abs(v - std::round(v)) > options_.integrality_tol) {
      Solution out;
      out.status = SolveStatus::kInfeasible;
      return out;
    }
  }
  BranchAndBound inner_solver([&] {
    BranchAndBoundOptions inner = options_;
    inner.simplex.presolve = false;
    return inner;
  }());
  Solution reduced = inner_solver.solve_direct(pre.reduced);
  if (reduced.x.empty()) return reduced;
  reduced.x = pre.restore(reduced.x);
  reduced.objective = model.objective_value(reduced.x);
  reduced.duals.clear();  // presolve re-indexed the rows; see class comment
  return reduced;
}

Solution BranchAndBound::solve_direct(const Model& model) const {
  SimplexSolver simplex(options_.simplex);
  if (!model.has_integers()) return simplex.solve(model);

  const double sense_sign = model.sense() == Sense::kMaximize ? -1.0 : 1.0;

  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  double incumbent_value = kInfinity;  // minimization form

  // A shared deadline's pivot accounting (and its latched wall-clock expiry)
  // would race across concurrent relaxations, so deadline solves go serial.
  const int wave =
      options_.simplex.deadline != nullptr ? 1 : std::max(1, options_.wave_size);

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  open.push({{}, -kInfinity});
  int nodes = 0;
  bool hit_node_limit = false;
  int total_pivots = 0;
  int total_reinversions = 0;
  int total_lu_reinversions = 0;
  int eta_peak = 0;

  std::vector<Scratch> slots;
  slots.reserve(static_cast<std::size_t>(wave));
  for (int s = 0; s < wave; ++s) slots.push_back({model, {}});
  std::vector<Node> wave_nodes;
  wave_nodes.reserve(static_cast<std::size_t>(wave));

  while (!open.empty() && nodes < options_.max_nodes) {
    // Pop the wave: up to `wave` best-bound nodes that survive pruning
    // against the incumbent as of the wave boundary. Pop order (and with it
    // the whole node tree) is a pure function of the queue contents.
    wave_nodes.clear();
    while (!open.empty() && static_cast<int>(wave_nodes.size()) < wave &&
           nodes < options_.max_nodes) {
      Node node = open.top();
      open.pop();
      ++nodes;
      if (node.relaxation_bound >= incumbent_value - options_.gap_tol *
                                        (1.0 + std::abs(incumbent_value))) {
        continue;  // cannot improve
      }
      wave_nodes.push_back(std::move(node));
    }
    if (wave_nodes.empty()) continue;

    // Evaluate the wave. Each slot owns its scratch model, every relaxation
    // is a self-contained function of its node's branch path, and
    // parallel_map preserves slot order — bit-identical at any pool size.
    std::vector<NodeResult> results;
    if (wave_nodes.size() == 1) {
      results.push_back(
          evaluate_node(model, simplex, slots[0], wave_nodes[0]));
    } else {
      results = runtime::parallel_map(wave_nodes.size(), [&](std::size_t s) {
        return evaluate_node(model, simplex, slots[s], wave_nodes[s]);
      });
    }

    // Merge in fixed slot order; the incumbent may tighten mid-merge, which
    // prunes later slots of the same wave exactly as it would serially.
    for (std::size_t s = 0; s < results.size(); ++s) {
      const NodeResult& result = results[s];
      if (result.conflict) continue;
      const Solution& relax = result.relax;
      total_pivots += relax.iterations;
      total_reinversions += relax.reinversions;
      total_lu_reinversions += relax.lu_reinversions;
      eta_peak = std::max(eta_peak, relax.eta_peak);
      if (relax.status == SolveStatus::kUnbounded) {
        // An unbounded relaxation at the root means the MIP itself may be
        // unbounded; report it rather than silently pruning.
        if (wave_nodes[s].bounds.empty()) {
          Solution out;
          out.status = SolveStatus::kUnbounded;
          out.iterations = total_pivots;
          out.reinversions = total_reinversions;
          out.lu_reinversions = total_lu_reinversions;
          out.eta_peak = eta_peak;
          out.nodes_explored = nodes;
          return out;
        }
        continue;
      }
      if (relax.status != SolveStatus::kOptimal) continue;
      const double relax_value = sense_sign * relax.objective;
      if (relax_value >= incumbent_value - options_.gap_tol *
                             (1.0 + std::abs(incumbent_value))) {
        continue;
      }

      const int branch_var =
          most_fractional(model, relax.x, options_.integrality_tol);
      if (branch_var < 0) {
        // Integral: new incumbent.
        incumbent = relax;
        incumbent_value = relax_value;
        continue;
      }

      const double v = relax.x[static_cast<std::size_t>(branch_var)];
      Node down = wave_nodes[s];
      down.relaxation_bound = relax_value;
      down.bounds.emplace_back(branch_var, -kInfinity, std::floor(v));
      Node up = wave_nodes[s];
      up.relaxation_bound = relax_value;
      up.bounds.emplace_back(branch_var, std::ceil(v), kInfinity);
      open.push(std::move(down));
      open.push(std::move(up));
    }
  }
  hit_node_limit = !open.empty() && nodes >= options_.max_nodes;

  if (incumbent.status == SolveStatus::kOptimal) {
    // Round integer variables exactly.
    for (int j = 0; j < model.num_variables(); ++j) {
      if (model.variable(j).is_integer) {
        incumbent.x[static_cast<std::size_t>(j)] =
            std::round(incumbent.x[static_cast<std::size_t>(j)]);
      }
    }
    if (hit_node_limit) incumbent.status = SolveStatus::kIterationLimit;
    incumbent.iterations = total_pivots;
    incumbent.reinversions = total_reinversions;
    incumbent.lu_reinversions = total_lu_reinversions;
    incumbent.eta_peak = eta_peak;
    incumbent.nodes_explored = nodes;
    return incumbent;
  }
  Solution out;
  out.status =
      hit_node_limit ? SolveStatus::kIterationLimit : SolveStatus::kInfeasible;
  out.iterations = total_pivots;
  out.reinversions = total_reinversions;
  out.lu_reinversions = total_lu_reinversions;
  out.eta_peak = eta_peak;
  out.nodes_explored = nodes;
  return out;
}

}  // namespace prete::lp
