#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace prete::lp {

SimplexBasis SimplexBasis::truncated(int rows, int structurals) const {
  SimplexBasis out;
  rows = std::max(0, std::min(rows, num_rows()));
  if (rows == 0) return out;
  if (structurals < 0 || structurals > num_structural()) {
    structurals = num_structural();
  }
  out.structural_status.assign(structural_status.begin(),
                               structural_status.begin() + structurals);
  out.slack_status.assign(slack_status.begin(), slack_status.begin() + rows);
  out.basic.assign(basic.begin(), basic.begin() + rows);
  out.basic_value.assign(basic_value.begin(), basic_value.begin() + rows);

  // Basis entries pointing at dropped slack or structural columns cannot
  // survive; their rows fall back to an artificial start.
  for (auto& entry : out.basic) {
    if ((entry.kind == Kind::kSlack && entry.index >= rows) ||
        (entry.kind == Kind::kStructural && entry.index >= structurals)) {
      entry = {Kind::kArtificial, 0};
    }
  }
  // Columns that were basic only in dropped rows demote to a bound; the
  // engine re-validates statuses against the bounds at apply time.
  std::vector<char> referenced_structural(structural_status.size(), 0);
  std::vector<char> referenced_slack(static_cast<std::size_t>(rows), 0);
  for (const auto& entry : out.basic) {
    if (entry.kind == Kind::kStructural) {
      referenced_structural[static_cast<std::size_t>(entry.index)] = 1;
    } else if (entry.kind == Kind::kSlack) {
      referenced_slack[static_cast<std::size_t>(entry.index)] = 1;
    }
  }
  for (std::size_t j = 0; j < out.structural_status.size(); ++j) {
    if (out.structural_status[j] == Status::kBasic && !referenced_structural[j]) {
      out.structural_status[j] = Status::kAtLower;
    }
  }
  for (std::size_t i = 0; i < out.slack_status.size(); ++i) {
    if (out.slack_status[i] == Status::kBasic && !referenced_slack[i]) {
      out.slack_status[i] = Status::kAtLower;
    }
  }
  return out;
}

namespace {

enum class VarStatus { kBasic, kAtLower, kAtUpper, kFreeAtZero };

// Internal equality-form problem: columns = structural vars, slacks, and
// artificials; every row is an equality. All costs are for minimization.
struct Workspace {
  int m = 0;           // rows
  int total = 0;       // total columns
  int num_structural = 0;
  int num_slack = 0;   // == m
  // Column-wise sparse matrix.
  std::vector<std::vector<Coefficient>> columns;
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<double> phase2_cost;
  std::vector<double> rhs;

  std::vector<VarStatus> status;
  std::vector<int> basis;          // basis[r] = column basic in row r
  std::vector<double> basic_value; // value of basis[r]
  std::vector<double> binv;        // dense m x m row-major basis inverse
  std::vector<double> nonbasic_value;  // value for every column (basic entries stale)

  double& binv_at(int r, int c) { return binv[static_cast<std::size_t>(r) * m + c]; }
  double binv_at(int r, int c) const {
    return binv[static_cast<std::size_t>(r) * m + c];
  }
};

double bound_start_value(double lower, double upper) {
  if (std::isfinite(lower)) return lower;
  if (std::isfinite(upper)) return upper;
  return 0.0;
}

VarStatus bound_start_status(double lower, double upper) {
  if (std::isfinite(lower)) return VarStatus::kAtLower;
  if (std::isfinite(upper)) return VarStatus::kAtUpper;
  return VarStatus::kFreeAtZero;
}

class SimplexEngine {
 public:
  SimplexEngine(const Model& model, const SimplexOptions& options,
                const SimplexBasis* warm)
      : options_(options) {
    build(model, warm);
  }

  Solution run(const Model& model) {
    Solution solution;
    int total_iters = 0;

    // Phase 1: minimize the sum of artificial variables. With a warm basis
    // and no basic artificials this terminates without a single pivot.
    std::vector<double> phase1_cost(static_cast<std::size_t>(ws_.total), 0.0);
    for (int j = first_artificial_; j < ws_.total; ++j) {
      phase1_cost[static_cast<std::size_t>(j)] = 1.0;
    }
    const SolveStatus phase1 = optimize(phase1_cost, /*phase1=*/true, total_iters);
    if (phase1 == SolveStatus::kIterationLimit) {
      solution.status = SolveStatus::kIterationLimit;
      solution.iterations = total_iters;
      return solution;
    }
    if (current_objective(phase1_cost) > 1e3 * options_.feasibility_tol) {
      solution.status = SolveStatus::kInfeasible;
      solution.iterations = total_iters;
      return solution;
    }
    // Lock the artificials at zero for phase 2.
    for (int j = first_artificial_; j < ws_.total; ++j) {
      ws_.upper[static_cast<std::size_t>(j)] = 0.0;
      if (ws_.status[static_cast<std::size_t>(j)] != VarStatus::kBasic) {
        ws_.status[static_cast<std::size_t>(j)] = VarStatus::kAtLower;
        ws_.nonbasic_value[static_cast<std::size_t>(j)] = 0.0;
      }
    }

    const SolveStatus phase2 = optimize(ws_.phase2_cost, /*phase1=*/false, total_iters);
    solution.iterations = total_iters;
    solution.status = phase2;
    if (phase2 != SolveStatus::kOptimal &&
        phase2 != SolveStatus::kIterationLimit) {
      return solution;
    }

    // Extract primal values for structural variables. On a phase-2 iteration
    // limit the current point is still primal feasible (the ratio test never
    // leaves the feasible region), so the incumbent x and its objective go
    // out with the kIterationLimit status instead of silent garbage.
    solution.x.assign(static_cast<std::size_t>(ws_.num_structural), 0.0);
    std::vector<double> full(static_cast<std::size_t>(ws_.total), 0.0);
    for (int j = 0; j < ws_.total; ++j) {
      full[static_cast<std::size_t>(j)] = ws_.nonbasic_value[static_cast<std::size_t>(j)];
    }
    for (int r = 0; r < ws_.m; ++r) {
      full[static_cast<std::size_t>(ws_.basis[static_cast<std::size_t>(r)])] =
          ws_.basic_value[static_cast<std::size_t>(r)];
    }
    for (int j = 0; j < ws_.num_structural; ++j) {
      solution.x[static_cast<std::size_t>(j)] = full[static_cast<std::size_t>(j)];
    }

    double obj = 0.0;
    for (int j = 0; j < ws_.num_structural; ++j) {
      obj += ws_.phase2_cost[static_cast<std::size_t>(j)] *
             solution.x[static_cast<std::size_t>(j)];
    }
    if (model.sense() == Sense::kMaximize) obj = -obj;
    solution.objective = obj;
    // Duals only at optimality: the incumbent basis of a truncated solve is
    // not dual-feasible and its shadow prices would poison Benders cuts.
    if (phase2 != SolveStatus::kOptimal) return solution;

    std::vector<double> y = dual_vector(ws_.phase2_cost);
    if (model.sense() == Sense::kMaximize) {
      for (double& v : y) v = -v;
    }
    solution.duals.assign(static_cast<std::size_t>(ws_.m), 0.0);
    for (int r = 0; r < ws_.m; ++r) {
      solution.duals[static_cast<std::size_t>(r)] = y[static_cast<std::size_t>(r)];
    }
    return solution;
  }

  // Snapshot of the final basis; only meaningful after an optimal run().
  void export_basis(SimplexBasis& out) const {
    const auto to_status = [](VarStatus st) {
      switch (st) {
        case VarStatus::kBasic:
          return SimplexBasis::Status::kBasic;
        case VarStatus::kAtUpper:
          return SimplexBasis::Status::kAtUpper;
        case VarStatus::kFreeAtZero:
          return SimplexBasis::Status::kFreeAtZero;
        case VarStatus::kAtLower:
          break;
      }
      return SimplexBasis::Status::kAtLower;
    };
    out.structural_status.resize(static_cast<std::size_t>(ws_.num_structural));
    for (int j = 0; j < ws_.num_structural; ++j) {
      out.structural_status[static_cast<std::size_t>(j)] =
          to_status(ws_.status[static_cast<std::size_t>(j)]);
    }
    out.slack_status.resize(static_cast<std::size_t>(ws_.m));
    for (int i = 0; i < ws_.m; ++i) {
      out.slack_status[static_cast<std::size_t>(i)] =
          to_status(ws_.status[static_cast<std::size_t>(ws_.num_structural + i)]);
    }
    out.basic.resize(static_cast<std::size_t>(ws_.m));
    out.basic_value.resize(static_cast<std::size_t>(ws_.m));
    for (int r = 0; r < ws_.m; ++r) {
      const int b = ws_.basis[static_cast<std::size_t>(r)];
      SimplexBasis::Entry entry;
      if (b < ws_.num_structural) {
        entry = {SimplexBasis::Kind::kStructural, b};
      } else if (b < first_artificial_) {
        entry = {SimplexBasis::Kind::kSlack, b - ws_.num_structural};
      } else {
        entry = {SimplexBasis::Kind::kArtificial, 0};
      }
      out.basic[static_cast<std::size_t>(r)] = entry;
      out.basic_value[static_cast<std::size_t>(r)] =
          ws_.basic_value[static_cast<std::size_t>(r)];
    }
  }

 private:
  void build(const Model& model, const SimplexBasis* warm) {
    const int n = model.num_variables();
    const int m = model.num_rows();
    ws_.m = m;
    ws_.num_structural = n;
    ws_.num_slack = m;
    first_artificial_ = n + m;
    ws_.total = n + 2 * m;

    ws_.columns.assign(static_cast<std::size_t>(ws_.total), {});
    ws_.lower.assign(static_cast<std::size_t>(ws_.total), 0.0);
    ws_.upper.assign(static_cast<std::size_t>(ws_.total), kInfinity);
    ws_.phase2_cost.assign(static_cast<std::size_t>(ws_.total), 0.0);
    ws_.rhs.assign(static_cast<std::size_t>(m), 0.0);

    const double sign = model.sense() == Sense::kMaximize ? -1.0 : 1.0;
    for (int j = 0; j < n; ++j) {
      const Variable& v = model.variable(j);
      ws_.lower[static_cast<std::size_t>(j)] = v.lower;
      ws_.upper[static_cast<std::size_t>(j)] = v.upper;
      ws_.phase2_cost[static_cast<std::size_t>(j)] = sign * v.objective;
    }
    for (int i = 0; i < m; ++i) {
      const Row& row = model.row(i);
      ws_.rhs[static_cast<std::size_t>(i)] = row.rhs;
      for (const auto& coef : row.coefficients) {
        if (coef.value != 0.0) {
          ws_.columns[static_cast<std::size_t>(coef.var)].push_back({i, coef.value});
        }
      }
      // Slack column: row becomes a*x + s = b.
      const int slack = n + i;
      ws_.columns[static_cast<std::size_t>(slack)].push_back({i, 1.0});
      switch (row.type) {
        case RowType::kLessEqual:
          ws_.lower[static_cast<std::size_t>(slack)] = 0.0;
          ws_.upper[static_cast<std::size_t>(slack)] = kInfinity;
          break;
        case RowType::kGreaterEqual:
          ws_.lower[static_cast<std::size_t>(slack)] = -kInfinity;
          ws_.upper[static_cast<std::size_t>(slack)] = 0.0;
          break;
        case RowType::kEqual:
          ws_.lower[static_cast<std::size_t>(slack)] = 0.0;
          ws_.upper[static_cast<std::size_t>(slack)] = 0.0;
          break;
      }
    }

    // Initial nonbasic point: every structural/slack variable at its nearest
    // finite bound (or zero if free).
    ws_.status.assign(static_cast<std::size_t>(ws_.total), VarStatus::kAtLower);
    ws_.nonbasic_value.assign(static_cast<std::size_t>(ws_.total), 0.0);
    for (int j = 0; j < first_artificial_; ++j) {
      ws_.status[static_cast<std::size_t>(j)] =
          bound_start_status(ws_.lower[static_cast<std::size_t>(j)],
                             ws_.upper[static_cast<std::size_t>(j)]);
      ws_.nonbasic_value[static_cast<std::size_t>(j)] =
          bound_start_value(ws_.lower[static_cast<std::size_t>(j)],
                            ws_.upper[static_cast<std::size_t>(j)]);
    }

    const bool compatible = warm != nullptr && warm->valid() &&
                            warm->num_structural() <= n && warm->num_rows() <= m;
    if (compatible) {
      // Overlay the hint's nonbasic statuses; even when the basis install
      // below fails, starting each variable at the bound it ended at last
      // time keeps the phase-1 residual small.
      for (int j = 0; j < warm->num_structural(); ++j) {
        apply_warm_status(j, warm->structural_status[static_cast<std::size_t>(j)]);
      }
      for (int i = 0; i < warm->num_rows(); ++i) {
        apply_warm_status(n + i, warm->slack_status[static_cast<std::size_t>(i)]);
      }
    }

    ws_.basis.assign(static_cast<std::size_t>(m), 0);
    ws_.basic_value.assign(static_cast<std::size_t>(m), 0.0);
    ws_.binv.assign(static_cast<std::size_t>(m) * static_cast<std::size_t>(m), 0.0);

    if (compatible && install_warm_basis(*warm)) return;
    install_artificial_basis();
  }

  // Moves a nonbasic column to the hinted bound when the bound structure
  // still permits it; kBasic is handled by the basis install.
  void apply_warm_status(int j, SimplexBasis::Status hinted) {
    const double lo = ws_.lower[static_cast<std::size_t>(j)];
    const double up = ws_.upper[static_cast<std::size_t>(j)];
    switch (hinted) {
      case SimplexBasis::Status::kAtLower:
        if (std::isfinite(lo)) {
          ws_.status[static_cast<std::size_t>(j)] = VarStatus::kAtLower;
          ws_.nonbasic_value[static_cast<std::size_t>(j)] = lo;
        }
        break;
      case SimplexBasis::Status::kAtUpper:
        if (std::isfinite(up)) {
          ws_.status[static_cast<std::size_t>(j)] = VarStatus::kAtUpper;
          ws_.nonbasic_value[static_cast<std::size_t>(j)] = up;
        }
        break;
      case SimplexBasis::Status::kFreeAtZero:
        if (!std::isfinite(lo) && !std::isfinite(up)) {
          ws_.status[static_cast<std::size_t>(j)] = VarStatus::kFreeAtZero;
          ws_.nonbasic_value[static_cast<std::size_t>(j)] = 0.0;
        }
        break;
      case SimplexBasis::Status::kBasic:
        break;
    }
  }

  // Residual b - A x of the current nonbasic starting point, with planned
  // basic columns (plan[r] >= 0) taken at `basic_guess[r]` instead.
  std::vector<double> starting_residual(const std::vector<int>& plan,
                                        const std::vector<double>& basic_guess) const {
    std::vector<double> residual = ws_.rhs;
    std::vector<double> value(static_cast<std::size_t>(first_artificial_), 0.0);
    for (int j = 0; j < first_artificial_; ++j) {
      value[static_cast<std::size_t>(j)] =
          ws_.nonbasic_value[static_cast<std::size_t>(j)];
    }
    for (int r = 0; r < ws_.m; ++r) {
      if (plan[static_cast<std::size_t>(r)] >= 0) {
        value[static_cast<std::size_t>(plan[static_cast<std::size_t>(r)])] =
            basic_guess[static_cast<std::size_t>(r)];
      }
    }
    for (int j = 0; j < first_artificial_; ++j) {
      const double xj = value[static_cast<std::size_t>(j)];
      if (xj == 0.0) continue;
      for (const auto& entry : ws_.columns[static_cast<std::size_t>(j)]) {
        residual[static_cast<std::size_t>(entry.var)] -= entry.value * xj;
      }
    }
    return residual;
  }

  // Tries to seat the hinted basis: hinted columns stay basic in their rows,
  // rows beyond the hint (or hinted-artificial rows) get a fresh artificial
  // sized to absorb the residual. Falls back (returns false, state restored)
  // if the hint is inconsistent, the basis is singular, or the implied basic
  // point is primal-infeasible — primal phase 1 can only repair artificials.
  bool install_warm_basis(const SimplexBasis& warm) {
    const int n = ws_.num_structural;
    const int m = ws_.m;
    std::vector<int> plan(static_cast<std::size_t>(m), -1);  // -1 = artificial
    std::vector<char> used(static_cast<std::size_t>(first_artificial_), 0);
    for (int r = 0; r < warm.num_rows(); ++r) {
      const SimplexBasis::Entry entry = warm.basic[static_cast<std::size_t>(r)];
      int col = -1;
      if (entry.kind == SimplexBasis::Kind::kStructural) {
        if (entry.index < 0 || entry.index >= warm.num_structural()) return false;
        col = entry.index;
      } else if (entry.kind == SimplexBasis::Kind::kSlack) {
        if (entry.index < 0 || entry.index >= warm.num_rows()) return false;
        col = n + entry.index;
      } else {
        continue;  // artificial row
      }
      if (used[static_cast<std::size_t>(col)]) return false;
      used[static_cast<std::size_t>(col)] = 1;
      plan[static_cast<std::size_t>(r)] = col;
    }

    std::vector<double> basic_guess(static_cast<std::size_t>(m), 0.0);
    for (int r = 0; r < warm.num_rows(); ++r) {
      basic_guess[static_cast<std::size_t>(r)] =
          warm.basic_value[static_cast<std::size_t>(r)];
    }
    const std::vector<double> residual = starting_residual(plan, basic_guess);

    const std::vector<VarStatus> status_backup = ws_.status;
    for (int r = 0; r < m; ++r) {
      int col = plan[static_cast<std::size_t>(r)];
      if (col < 0) {
        col = first_artificial_ + r;
        const double sgn = residual[static_cast<std::size_t>(r)] >= 0.0 ? 1.0 : -1.0;
        ws_.columns[static_cast<std::size_t>(col)].assign(1, {r, sgn});
        ws_.basic_value[static_cast<std::size_t>(r)] =
            std::abs(residual[static_cast<std::size_t>(r)]);
      } else {
        ws_.basic_value[static_cast<std::size_t>(r)] =
            basic_guess[static_cast<std::size_t>(r)];
      }
      ws_.status[static_cast<std::size_t>(col)] = VarStatus::kBasic;
      ws_.basis[static_cast<std::size_t>(r)] = col;
    }

    bool ok = refactorize();  // also recomputes the basic values exactly
    if (ok) {
      const double tol = 1e3 * options_.feasibility_tol;
      for (int r = 0; r < m && ok; ++r) {
        const int b = ws_.basis[static_cast<std::size_t>(r)];
        const double v = ws_.basic_value[static_cast<std::size_t>(r)];
        ok = v >= ws_.lower[static_cast<std::size_t>(b)] - tol &&
             v <= ws_.upper[static_cast<std::size_t>(b)] + tol;
      }
    }
    if (!ok) {
      ws_.status = status_backup;
      for (int r = 0; r < m; ++r) {
        ws_.columns[static_cast<std::size_t>(first_artificial_ + r)].clear();
      }
      return false;
    }
    return true;
  }

  // The all-artificial cold basis (also the warm-start fallback), absorbing
  // whatever residual the current nonbasic starting point leaves.
  void install_artificial_basis() {
    const int m = ws_.m;
    const std::vector<int> no_plan(static_cast<std::size_t>(m), -1);
    const std::vector<double> residual =
        starting_residual(no_plan, std::vector<double>(static_cast<std::size_t>(m), 0.0));
    std::fill(ws_.binv.begin(), ws_.binv.end(), 0.0);
    for (int i = 0; i < m; ++i) {
      const int art = first_artificial_ + i;
      const double sign = residual[static_cast<std::size_t>(i)] >= 0.0 ? 1.0 : -1.0;
      ws_.columns[static_cast<std::size_t>(art)].assign(1, {i, sign});
      ws_.status[static_cast<std::size_t>(art)] = VarStatus::kBasic;
      ws_.basis[static_cast<std::size_t>(i)] = art;
      ws_.basic_value[static_cast<std::size_t>(i)] =
          std::abs(residual[static_cast<std::size_t>(i)]);
      ws_.binv_at(i, i) = sign;  // inverse of the +-1 diagonal basis
    }
  }

  double current_objective(const std::vector<double>& cost) const {
    double obj = 0.0;
    for (int j = 0; j < ws_.total; ++j) {
      if (ws_.status[static_cast<std::size_t>(j)] != VarStatus::kBasic) {
        obj += cost[static_cast<std::size_t>(j)] *
               ws_.nonbasic_value[static_cast<std::size_t>(j)];
      }
    }
    for (int r = 0; r < ws_.m; ++r) {
      obj += cost[static_cast<std::size_t>(ws_.basis[static_cast<std::size_t>(r)])] *
             ws_.basic_value[static_cast<std::size_t>(r)];
    }
    return obj;
  }

  std::vector<double> dual_vector(const std::vector<double>& cost) const {
    std::vector<double> y(static_cast<std::size_t>(ws_.m), 0.0);
    for (int r = 0; r < ws_.m; ++r) {
      const double cb = cost[static_cast<std::size_t>(ws_.basis[static_cast<std::size_t>(r)])];
      if (cb == 0.0) continue;
      for (int c = 0; c < ws_.m; ++c) {
        y[static_cast<std::size_t>(c)] += cb * ws_.binv_at(r, c);
      }
    }
    return y;
  }

  double reduced_cost(int j, const std::vector<double>& cost,
                      const std::vector<double>& y) const {
    double d = cost[static_cast<std::size_t>(j)];
    for (const auto& entry : ws_.columns[static_cast<std::size_t>(j)]) {
      d -= y[static_cast<std::size_t>(entry.var)] * entry.value;
    }
    return d;
  }

  // w = B^-1 * column_j
  void ftran(int j, std::vector<double>& w) const {
    std::fill(w.begin(), w.end(), 0.0);
    for (const auto& entry : ws_.columns[static_cast<std::size_t>(j)]) {
      const double a = entry.value;
      if (a == 0.0) continue;
      const int c = entry.var;
      for (int r = 0; r < ws_.m; ++r) {
        w[static_cast<std::size_t>(r)] += a * ws_.binv_at(r, c);
      }
    }
  }

  // Rebuilds binv from the current basis columns by Gauss-Jordan with
  // partial pivoting, then recomputes the basic values.
  bool refactorize() {
    const int m = ws_.m;
    std::vector<double> dense(static_cast<std::size_t>(m) * m, 0.0);
    for (int c = 0; c < m; ++c) {
      for (const auto& entry :
           ws_.columns[static_cast<std::size_t>(ws_.basis[static_cast<std::size_t>(c)])]) {
        dense[static_cast<std::size_t>(entry.var) * m + c] = entry.value;
      }
    }
    std::vector<double> inv(static_cast<std::size_t>(m) * m, 0.0);
    for (int i = 0; i < m; ++i) inv[static_cast<std::size_t>(i) * m + i] = 1.0;

    for (int col = 0; col < m; ++col) {
      int pivot = col;
      double best = std::abs(dense[static_cast<std::size_t>(col) * m + col]);
      for (int r = col + 1; r < m; ++r) {
        const double v = std::abs(dense[static_cast<std::size_t>(r) * m + col]);
        if (v > best) {
          best = v;
          pivot = r;
        }
      }
      if (best < 1e-12) return false;  // numerically singular basis
      if (pivot != col) {
        for (int c = 0; c < m; ++c) {
          std::swap(dense[static_cast<std::size_t>(pivot) * m + c],
                    dense[static_cast<std::size_t>(col) * m + c]);
          std::swap(inv[static_cast<std::size_t>(pivot) * m + c],
                    inv[static_cast<std::size_t>(col) * m + c]);
        }
      }
      const double piv = dense[static_cast<std::size_t>(col) * m + col];
      const double inv_piv = 1.0 / piv;
      for (int c = 0; c < m; ++c) {
        dense[static_cast<std::size_t>(col) * m + c] *= inv_piv;
        inv[static_cast<std::size_t>(col) * m + c] *= inv_piv;
      }
      for (int r = 0; r < m; ++r) {
        if (r == col) continue;
        const double factor = dense[static_cast<std::size_t>(r) * m + col];
        if (factor == 0.0) continue;
        for (int c = 0; c < m; ++c) {
          dense[static_cast<std::size_t>(r) * m + c] -=
              factor * dense[static_cast<std::size_t>(col) * m + c];
          inv[static_cast<std::size_t>(r) * m + c] -=
              factor * inv[static_cast<std::size_t>(col) * m + c];
        }
      }
    }
    ws_.binv = std::move(inv);
    recompute_basic_values();
    return true;
  }

  void recompute_basic_values() {
    // x_B = B^-1 (b - N x_N)
    std::vector<double> rhs = ws_.rhs;
    for (int j = 0; j < ws_.total; ++j) {
      if (ws_.status[static_cast<std::size_t>(j)] == VarStatus::kBasic) continue;
      const double xj = ws_.nonbasic_value[static_cast<std::size_t>(j)];
      if (xj == 0.0) continue;
      for (const auto& entry : ws_.columns[static_cast<std::size_t>(j)]) {
        rhs[static_cast<std::size_t>(entry.var)] -= entry.value * xj;
      }
    }
    for (int r = 0; r < ws_.m; ++r) {
      double v = 0.0;
      for (int c = 0; c < ws_.m; ++c) {
        v += ws_.binv_at(r, c) * rhs[static_cast<std::size_t>(c)];
      }
      ws_.basic_value[static_cast<std::size_t>(r)] = v;
    }
  }

  SolveStatus optimize(const std::vector<double>& cost, bool phase1,
                       int& total_iters) {
    const int m = ws_.m;
    const int max_iters =
        options_.max_iterations > 0
            ? options_.max_iterations
            : 2000 + 40 * (ws_.total + m);
    std::vector<double> w(static_cast<std::size_t>(m), 0.0);
    int degenerate_streak = 0;
    int since_refactor = 0;

    // Devex reference framework (Forrest & Goldfarb): every nonbasic column
    // starts at weight 1 (the phase's starting nonbasic set is the reference
    // frame) and the weights track approximate steepest-edge norms as the
    // basis walks away from it. The frame is re-anchored when the largest
    // weight outgrows its trust window. Eligibility (reduced cost beyond the
    // optimality tolerance) is identical to Dantzig's, so the pricing rule
    // changes only the pivot path, never the optimality conditions.
    //
    // Devex prices phase 2 only. The phase-1 composite objective is
    // transient and its all-artificial starting basis makes the reference
    // frame uninformative — measured on this workload, devex phase 1 costs
    // 15-20% more pivots than Dantzig, while devex phase 2 saves 8% across
    // the Benders pipeline's warm re-solves.
    const bool devex = options_.pricing == PricingRule::kDevex && !phase1;
    std::vector<double> devex_weight;
    if (devex) devex_weight.assign(static_cast<std::size_t>(ws_.total), 1.0);
    constexpr double kDevexResetThreshold = 1e7;

    for (int iter = 0; iter < max_iters; ++iter, ++total_iters) {
      // Cooperative deadline: checked before the pivot so the overrun past
      // expiry is at most the pivot in flight. Each loop iteration (pivot or
      // bound flip) charges one pivot, making pivot-budget expiry a pure
      // function of the work done — deterministic at any thread count.
      if (options_.deadline != nullptr) {
        if (options_.deadline->expired()) return SolveStatus::kIterationLimit;
        options_.deadline->charge_pivots();
      }
      const std::vector<double> y = dual_vector(cost);

      // Pricing.
      const bool use_bland = degenerate_streak > options_.degenerate_pivot_limit;
      int entering = -1;
      double entering_dir = 0.0;
      double best_merit = devex ? 0.0 : options_.optimality_tol;
      for (int j = 0; j < ws_.total; ++j) {
        const VarStatus st = ws_.status[static_cast<std::size_t>(j)];
        if (st == VarStatus::kBasic) continue;
        // Locked variables (fixed artificials, equality slacks) cannot move.
        if (ws_.lower[static_cast<std::size_t>(j)] ==
            ws_.upper[static_cast<std::size_t>(j)]) {
          continue;
        }
        const double d = reduced_cost(j, cost, y);
        double score = 0.0;
        double dir = 0.0;
        if ((st == VarStatus::kAtLower || st == VarStatus::kFreeAtZero) &&
            d < -options_.optimality_tol) {
          score = -d;
          dir = 1.0;
        } else if ((st == VarStatus::kAtUpper || st == VarStatus::kFreeAtZero) &&
                   d > options_.optimality_tol) {
          score = d;
          dir = -1.0;
        }
        if (score <= 0.0) continue;
        if (use_bland) {  // first eligible index
          entering = j;
          entering_dir = dir;
          break;
        }
        const double merit =
            devex ? score * score / devex_weight[static_cast<std::size_t>(j)]
                  : score;
        if (merit > best_merit) {
          best_merit = merit;
          entering = j;
          entering_dir = dir;
        }
      }
      if (entering < 0) return SolveStatus::kOptimal;  // dual feasible

      ftran(entering, w);

      // Ratio test. The entering variable moves by t >= 0 in direction
      // entering_dir; basic variable r changes at rate -entering_dir * w[r].
      double t_max = ws_.upper[static_cast<std::size_t>(entering)] -
                     ws_.lower[static_cast<std::size_t>(entering)];
      if (!std::isfinite(t_max)) t_max = kInfinity;
      int leaving = -1;  // row index of the blocking basic variable
      bool leaving_to_upper = false;
      double best_pivot_mag = 0.0;
      constexpr double kPivotTol = 1e-9;
      for (int r = 0; r < m; ++r) {
        const double rate = -entering_dir * w[static_cast<std::size_t>(r)];
        if (std::abs(rate) < kPivotTol) continue;
        const int b = ws_.basis[static_cast<std::size_t>(r)];
        const double xb = ws_.basic_value[static_cast<std::size_t>(r)];
        double limit = kInfinity;
        bool to_upper = false;
        if (rate < 0.0) {  // decreasing toward its lower bound
          const double lb = ws_.lower[static_cast<std::size_t>(b)];
          if (std::isfinite(lb)) limit = (xb - lb) / (-rate);
        } else {  // increasing toward its upper bound
          const double ub = ws_.upper[static_cast<std::size_t>(b)];
          if (std::isfinite(ub)) {
            limit = (ub - xb) / rate;
            to_upper = true;
          }
        }
        if (limit < -1e-12) limit = 0.0;
        if (limit < t_max - 1e-12 ||
            (limit < t_max + 1e-12 &&
             std::abs(w[static_cast<std::size_t>(r)]) > best_pivot_mag)) {
          t_max = std::max(limit, 0.0);
          leaving = r;
          leaving_to_upper = to_upper;
          best_pivot_mag = std::abs(w[static_cast<std::size_t>(r)]);
        }
      }

      if (!std::isfinite(t_max)) {
        return phase1 ? SolveStatus::kInfeasible : SolveStatus::kUnbounded;
      }
      degenerate_streak = t_max < 1e-11 ? degenerate_streak + 1 : 0;

      // Apply the step to the basic values.
      if (t_max > 0.0) {
        for (int r = 0; r < m; ++r) {
          ws_.basic_value[static_cast<std::size_t>(r)] -=
              t_max * entering_dir * w[static_cast<std::size_t>(r)];
        }
      }

      if (leaving < 0) {
        // Bound flip: the entering variable runs to its opposite bound.
        auto& st = ws_.status[static_cast<std::size_t>(entering)];
        st = entering_dir > 0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
        ws_.nonbasic_value[static_cast<std::size_t>(entering)] =
            entering_dir > 0 ? ws_.upper[static_cast<std::size_t>(entering)]
                             : ws_.lower[static_cast<std::size_t>(entering)];
        continue;
      }

      // Pivot: entering becomes basic in row `leaving`.
      const int leave_var = ws_.basis[static_cast<std::size_t>(leaving)];
      const double entering_value =
          ws_.nonbasic_value[static_cast<std::size_t>(entering)] +
          entering_dir * t_max;

      ws_.status[static_cast<std::size_t>(leave_var)] =
          leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      ws_.nonbasic_value[static_cast<std::size_t>(leave_var)] =
          leaving_to_upper ? ws_.upper[static_cast<std::size_t>(leave_var)]
                           : ws_.lower[static_cast<std::size_t>(leave_var)];
      ws_.status[static_cast<std::size_t>(entering)] = VarStatus::kBasic;
      ws_.basis[static_cast<std::size_t>(leaving)] = entering;
      ws_.basic_value[static_cast<std::size_t>(leaving)] = entering_value;

      if (devex) {
        // Reference-framework update: with entering weight gamma_q and pivot
        // element alpha_q = w[leaving], every nonbasic column j updates to
        // max(gamma_j, (alpha_j / alpha_q)^2 * gamma_q) where alpha_j is its
        // pivot-row entry under the *pre-pivot* inverse; the leaving column
        // gets max(gamma_q / alpha_q^2, 1). Bound flips above skip this —
        // the basis (and hence the framework geometry) did not change.
        const double gamma_q = devex_weight[static_cast<std::size_t>(entering)];
        const double alpha_q = w[static_cast<std::size_t>(leaving)];
        const double alpha_q_sq = alpha_q * alpha_q;
        double max_weight = 1.0;
        for (int j = 0; j < ws_.total; ++j) {
          if (j == entering || j == leave_var) continue;
          if (ws_.status[static_cast<std::size_t>(j)] == VarStatus::kBasic) {
            continue;
          }
          if (ws_.lower[static_cast<std::size_t>(j)] ==
              ws_.upper[static_cast<std::size_t>(j)]) {
            continue;  // locked columns never price, so their weight is dead
          }
          double alpha_j = 0.0;
          for (const auto& entry : ws_.columns[static_cast<std::size_t>(j)]) {
            alpha_j += ws_.binv_at(leaving, entry.var) * entry.value;
          }
          if (alpha_j != 0.0) {
            double& g = devex_weight[static_cast<std::size_t>(j)];
            const double cand = (alpha_j * alpha_j / alpha_q_sq) * gamma_q;
            if (cand > g) g = cand;
            if (g > max_weight) max_weight = g;
          }
        }
        double& g_leave = devex_weight[static_cast<std::size_t>(leave_var)];
        g_leave = std::max(gamma_q / alpha_q_sq, 1.0);
        if (g_leave > max_weight) max_weight = g_leave;
        devex_weight[static_cast<std::size_t>(entering)] = 1.0;
        if (max_weight > kDevexResetThreshold) {
          // Re-anchor the reference frame at the current nonbasic set.
          std::fill(devex_weight.begin(), devex_weight.end(), 1.0);
        }
      }

      // Product-form update of the inverse: pivot on w[leaving].
      const double piv = w[static_cast<std::size_t>(leaving)];
      const double inv_piv = 1.0 / piv;
      for (int c = 0; c < m; ++c) ws_.binv_at(leaving, c) *= inv_piv;
      for (int r = 0; r < m; ++r) {
        if (r == leaving) continue;
        const double factor = w[static_cast<std::size_t>(r)];
        if (factor == 0.0) continue;
        for (int c = 0; c < m; ++c) {
          ws_.binv_at(r, c) -= factor * ws_.binv_at(leaving, c);
        }
      }

      if (++since_refactor >= options_.refactor_interval) {
        since_refactor = 0;
        if (!refactorize()) return SolveStatus::kIterationLimit;
      }
    }
    return SolveStatus::kIterationLimit;
  }

  SimplexOptions options_;
  Workspace ws_;
  int first_artificial_ = 0;
};

}  // namespace

Solution SimplexSolver::solve(const Model& model, const SimplexBasis* warm,
                              SimplexBasis* basis_out) const {
  if (model.num_rows() == 0) {
    // Pure bound problem: each variable sits at whichever bound its cost
    // prefers; unbounded if the preferred direction has no finite bound.
    Solution solution;
    solution.status = SolveStatus::kOptimal;
    solution.x.assign(static_cast<std::size_t>(model.num_variables()), 0.0);
    const double sign = model.sense() == Sense::kMaximize ? -1.0 : 1.0;
    for (int j = 0; j < model.num_variables(); ++j) {
      const Variable& v = model.variable(j);
      const double c = sign * v.objective;
      double x = 0.0;
      if (c > 0) {
        x = v.lower;
      } else if (c < 0) {
        x = v.upper;
      } else {
        x = bound_start_value(v.lower, v.upper);
      }
      if (!std::isfinite(x)) {
        solution.status = SolveStatus::kUnbounded;
        return solution;
      }
      solution.x[static_cast<std::size_t>(j)] = x;
    }
    solution.objective = model.objective_value(solution.x);
    return solution;
  }
  SimplexEngine engine(model, options_, warm);
  Solution solution = engine.run(model);
  if (basis_out != nullptr && solution.status == SolveStatus::kOptimal) {
    engine.export_basis(*basis_out);
  }
  return solution;
}

}  // namespace prete::lp
