#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "lp/basis.h"

namespace prete::lp {

SimplexBasis SimplexBasis::truncated(int rows, int structurals) const {
  SimplexBasis out;
  rows = std::max(0, std::min(rows, num_rows()));
  if (rows == 0) return out;
  if (structurals < 0 || structurals > num_structural()) {
    structurals = num_structural();
  }
  out.structural_status.assign(structural_status.begin(),
                               structural_status.begin() + structurals);
  out.slack_status.assign(slack_status.begin(), slack_status.begin() + rows);
  out.basic.assign(basic.begin(), basic.begin() + rows);
  out.basic_value.assign(basic_value.begin(), basic_value.begin() + rows);

  // Basis entries pointing at dropped slack or structural columns cannot
  // survive; their rows fall back to an artificial start.
  for (auto& entry : out.basic) {
    if ((entry.kind == Kind::kSlack && entry.index >= rows) ||
        (entry.kind == Kind::kStructural && entry.index >= structurals)) {
      entry = {Kind::kArtificial, 0};
    }
  }
  // Columns that were basic only in dropped rows demote to a bound; the
  // engine re-validates statuses against the bounds at apply time.
  std::vector<char> referenced_structural(structural_status.size(), 0);
  std::vector<char> referenced_slack(static_cast<std::size_t>(rows), 0);
  for (const auto& entry : out.basic) {
    if (entry.kind == Kind::kStructural) {
      referenced_structural[static_cast<std::size_t>(entry.index)] = 1;
    } else if (entry.kind == Kind::kSlack) {
      referenced_slack[static_cast<std::size_t>(entry.index)] = 1;
    }
  }
  for (std::size_t j = 0; j < out.structural_status.size(); ++j) {
    if (out.structural_status[j] == Status::kBasic && !referenced_structural[j]) {
      out.structural_status[j] = Status::kAtLower;
    }
  }
  for (std::size_t i = 0; i < out.slack_status.size(); ++i) {
    if (out.slack_status[i] == Status::kBasic && !referenced_slack[i]) {
      out.slack_status[i] = Status::kAtLower;
    }
  }
  return out;
}

namespace {

enum class VarStatus { kBasic, kAtLower, kAtUpper, kFreeAtZero };

// Internal equality-form problem: columns = structural vars, slacks, and
// artificials; every row is an equality. All costs are for minimization.
struct Workspace {
  int m = 0;           // rows
  int total = 0;       // total columns
  int num_structural = 0;
  int num_slack = 0;   // == m
  // Column-wise sparse matrix.
  std::vector<std::vector<Coefficient>> columns;
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<double> phase2_cost;
  std::vector<double> rhs;

  std::vector<VarStatus> status;
  std::vector<int> basis;          // basis[r] = column basic in row r
  std::vector<double> basic_value; // value of basis[r]
  std::vector<double> nonbasic_value;  // value for every column (basic entries stale)
};

double bound_start_value(double lower, double upper) {
  if (std::isfinite(lower)) return lower;
  if (std::isfinite(upper)) return upper;
  return 0.0;
}

VarStatus bound_start_status(double lower, double upper) {
  if (std::isfinite(lower)) return VarStatus::kAtLower;
  if (std::isfinite(upper)) return VarStatus::kAtUpper;
  return VarStatus::kFreeAtZero;
}

class SimplexEngine {
 public:
  SimplexEngine(const Model& model, const SimplexOptions& options,
                const SimplexBasis* warm)
      : options_(options) {
    build(model, warm);
  }

  Solution run(const Model& model) {
    Solution solution;
    int total_iters = 0;

    // Phase 1: minimize the sum of artificial variables. With a warm basis
    // and no basic artificials this terminates without a single pivot.
    std::vector<double> phase1_cost(static_cast<std::size_t>(ws_.total), 0.0);
    for (int j = first_artificial_; j < ws_.total; ++j) {
      phase1_cost[static_cast<std::size_t>(j)] = 1.0;
    }
    const SolveStatus phase1 = optimize(phase1_cost, /*phase1=*/true, total_iters);
    if (phase1 == SolveStatus::kIterationLimit) {
      solution.status = SolveStatus::kIterationLimit;
      solution.iterations = total_iters;
      return solution;
    }
    if (current_objective(phase1_cost) > 1e3 * options_.feasibility_tol) {
      solution.status = SolveStatus::kInfeasible;
      solution.iterations = total_iters;
      return solution;
    }
    // Lock the artificials at zero for phase 2.
    for (int j = first_artificial_; j < ws_.total; ++j) {
      ws_.upper[static_cast<std::size_t>(j)] = 0.0;
      if (ws_.status[static_cast<std::size_t>(j)] != VarStatus::kBasic) {
        ws_.status[static_cast<std::size_t>(j)] = VarStatus::kAtLower;
        ws_.nonbasic_value[static_cast<std::size_t>(j)] = 0.0;
      }
    }

    const SolveStatus phase2 = optimize(ws_.phase2_cost, /*phase1=*/false, total_iters);
    solution.iterations = total_iters;
    solution.status = phase2;
    if (phase2 != SolveStatus::kOptimal &&
        phase2 != SolveStatus::kIterationLimit) {
      return solution;
    }

    // Extract primal values for structural variables. On a phase-2 iteration
    // limit the current point is still primal feasible (the ratio test never
    // leaves the feasible region), so the incumbent x and its objective go
    // out with the kIterationLimit status instead of silent garbage.
    solution.x.assign(static_cast<std::size_t>(ws_.num_structural), 0.0);
    std::vector<double> full(static_cast<std::size_t>(ws_.total), 0.0);
    for (int j = 0; j < ws_.total; ++j) {
      full[static_cast<std::size_t>(j)] = ws_.nonbasic_value[static_cast<std::size_t>(j)];
    }
    for (int r = 0; r < ws_.m; ++r) {
      full[static_cast<std::size_t>(ws_.basis[static_cast<std::size_t>(r)])] =
          ws_.basic_value[static_cast<std::size_t>(r)];
    }
    for (int j = 0; j < ws_.num_structural; ++j) {
      solution.x[static_cast<std::size_t>(j)] = full[static_cast<std::size_t>(j)];
    }

    double obj = 0.0;
    for (int j = 0; j < ws_.num_structural; ++j) {
      obj += ws_.phase2_cost[static_cast<std::size_t>(j)] *
             solution.x[static_cast<std::size_t>(j)];
    }
    if (model.sense() == Sense::kMaximize) obj = -obj;
    solution.objective = obj;
    // Duals only at optimality: the incumbent basis of a truncated solve is
    // not dual-feasible and its shadow prices would poison Benders cuts.
    if (phase2 != SolveStatus::kOptimal) return solution;

    std::vector<double> y;
    compute_duals(ws_.phase2_cost, y);
    if (model.sense() == Sense::kMaximize) {
      for (double& v : y) v = -v;
    }
    solution.duals.assign(static_cast<std::size_t>(ws_.m), 0.0);
    for (int r = 0; r < ws_.m; ++r) {
      solution.duals[static_cast<std::size_t>(r)] = y[static_cast<std::size_t>(r)];
    }
    return solution;
  }

  const BasisState::Stats& kernel_stats() const { return basis_.stats(); }

  // Snapshot of the final basis; only meaningful after an optimal run().
  void export_basis(SimplexBasis& out) const {
    const auto to_status = [](VarStatus st) {
      switch (st) {
        case VarStatus::kBasic:
          return SimplexBasis::Status::kBasic;
        case VarStatus::kAtUpper:
          return SimplexBasis::Status::kAtUpper;
        case VarStatus::kFreeAtZero:
          return SimplexBasis::Status::kFreeAtZero;
        case VarStatus::kAtLower:
          break;
      }
      return SimplexBasis::Status::kAtLower;
    };
    out.structural_status.resize(static_cast<std::size_t>(ws_.num_structural));
    for (int j = 0; j < ws_.num_structural; ++j) {
      out.structural_status[static_cast<std::size_t>(j)] =
          to_status(ws_.status[static_cast<std::size_t>(j)]);
    }
    out.slack_status.resize(static_cast<std::size_t>(ws_.m));
    for (int i = 0; i < ws_.m; ++i) {
      out.slack_status[static_cast<std::size_t>(i)] =
          to_status(ws_.status[static_cast<std::size_t>(ws_.num_structural + i)]);
    }
    out.basic.resize(static_cast<std::size_t>(ws_.m));
    out.basic_value.resize(static_cast<std::size_t>(ws_.m));
    for (int r = 0; r < ws_.m; ++r) {
      const int b = ws_.basis[static_cast<std::size_t>(r)];
      SimplexBasis::Entry entry;
      if (b < ws_.num_structural) {
        entry = {SimplexBasis::Kind::kStructural, b};
      } else if (b < first_artificial_) {
        entry = {SimplexBasis::Kind::kSlack, b - ws_.num_structural};
      } else {
        entry = {SimplexBasis::Kind::kArtificial, 0};
      }
      out.basic[static_cast<std::size_t>(r)] = entry;
      out.basic_value[static_cast<std::size_t>(r)] =
          ws_.basic_value[static_cast<std::size_t>(r)];
    }
  }

 private:
  void build(const Model& model, const SimplexBasis* warm) {
    const int n = model.num_variables();
    const int m = model.num_rows();
    ws_.m = m;
    ws_.num_structural = n;
    ws_.num_slack = m;
    first_artificial_ = n + m;
    ws_.total = n + 2 * m;

    basis_.configure(options_.kernel, options_.refactor_interval,
                     options_.lu_threshold);
    pricing_window_ = ws_.total;
    if (options_.pricing_window > 0) {
      pricing_window_ = std::min(options_.pricing_window, ws_.total);
    } else if (options_.pricing_window == 0) {
      // A shrunken candidate list only pays when the pricing scan dominates
      // the per-pivot cost, i.e. when columns heavily outnumber rows. On
      // row-dominated LPs the O(m^2) kernel solves dwarf the scan, so a
      // window just lengthens the pivot path for no savings — price fully.
      const int automatic = std::clamp(ws_.total / 8, 64, 512);
      if (ws_.total >= 4 * m && automatic < ws_.total) {
        pricing_window_ = automatic;
      }
    }

    ws_.columns.assign(static_cast<std::size_t>(ws_.total), {});
    ws_.lower.assign(static_cast<std::size_t>(ws_.total), 0.0);
    ws_.upper.assign(static_cast<std::size_t>(ws_.total), kInfinity);
    ws_.phase2_cost.assign(static_cast<std::size_t>(ws_.total), 0.0);
    ws_.rhs.assign(static_cast<std::size_t>(m), 0.0);

    const double sign = model.sense() == Sense::kMaximize ? -1.0 : 1.0;
    for (int j = 0; j < n; ++j) {
      const Variable& v = model.variable(j);
      ws_.lower[static_cast<std::size_t>(j)] = v.lower;
      ws_.upper[static_cast<std::size_t>(j)] = v.upper;
      ws_.phase2_cost[static_cast<std::size_t>(j)] = sign * v.objective;
    }
    for (int i = 0; i < m; ++i) {
      const Row& row = model.row(i);
      ws_.rhs[static_cast<std::size_t>(i)] = row.rhs;
      for (const auto& coef : row.coefficients) {
        if (coef.value != 0.0) {
          ws_.columns[static_cast<std::size_t>(coef.var)].push_back({i, coef.value});
        }
      }
      // Slack column: row becomes a*x + s = b.
      const int slack = n + i;
      ws_.columns[static_cast<std::size_t>(slack)].push_back({i, 1.0});
      switch (row.type) {
        case RowType::kLessEqual:
          ws_.lower[static_cast<std::size_t>(slack)] = 0.0;
          ws_.upper[static_cast<std::size_t>(slack)] = kInfinity;
          break;
        case RowType::kGreaterEqual:
          ws_.lower[static_cast<std::size_t>(slack)] = -kInfinity;
          ws_.upper[static_cast<std::size_t>(slack)] = 0.0;
          break;
        case RowType::kEqual:
          ws_.lower[static_cast<std::size_t>(slack)] = 0.0;
          ws_.upper[static_cast<std::size_t>(slack)] = 0.0;
          break;
      }
    }

    // Initial nonbasic point: every structural/slack variable at its nearest
    // finite bound (or zero if free).
    ws_.status.assign(static_cast<std::size_t>(ws_.total), VarStatus::kAtLower);
    ws_.nonbasic_value.assign(static_cast<std::size_t>(ws_.total), 0.0);
    for (int j = 0; j < first_artificial_; ++j) {
      ws_.status[static_cast<std::size_t>(j)] =
          bound_start_status(ws_.lower[static_cast<std::size_t>(j)],
                             ws_.upper[static_cast<std::size_t>(j)]);
      ws_.nonbasic_value[static_cast<std::size_t>(j)] =
          bound_start_value(ws_.lower[static_cast<std::size_t>(j)],
                            ws_.upper[static_cast<std::size_t>(j)]);
    }

    const bool compatible = warm != nullptr && warm->valid() &&
                            warm->num_structural() <= n && warm->num_rows() <= m;
    if (compatible) {
      // Overlay the hint's nonbasic statuses; even when the basis install
      // below fails, starting each variable at the bound it ended at last
      // time keeps the phase-1 residual small.
      for (int j = 0; j < warm->num_structural(); ++j) {
        apply_warm_status(j, warm->structural_status[static_cast<std::size_t>(j)]);
      }
      for (int i = 0; i < warm->num_rows(); ++i) {
        apply_warm_status(n + i, warm->slack_status[static_cast<std::size_t>(i)]);
      }
    }

    ws_.basis.assign(static_cast<std::size_t>(m), 0);
    ws_.basic_value.assign(static_cast<std::size_t>(m), 0.0);

    if (compatible && install_warm_basis(*warm)) return;
    install_artificial_basis();
  }

  // Moves a nonbasic column to the hinted bound when the bound structure
  // still permits it; kBasic is handled by the basis install.
  void apply_warm_status(int j, SimplexBasis::Status hinted) {
    const double lo = ws_.lower[static_cast<std::size_t>(j)];
    const double up = ws_.upper[static_cast<std::size_t>(j)];
    switch (hinted) {
      case SimplexBasis::Status::kAtLower:
        if (std::isfinite(lo)) {
          ws_.status[static_cast<std::size_t>(j)] = VarStatus::kAtLower;
          ws_.nonbasic_value[static_cast<std::size_t>(j)] = lo;
        }
        break;
      case SimplexBasis::Status::kAtUpper:
        if (std::isfinite(up)) {
          ws_.status[static_cast<std::size_t>(j)] = VarStatus::kAtUpper;
          ws_.nonbasic_value[static_cast<std::size_t>(j)] = up;
        }
        break;
      case SimplexBasis::Status::kFreeAtZero:
        if (!std::isfinite(lo) && !std::isfinite(up)) {
          ws_.status[static_cast<std::size_t>(j)] = VarStatus::kFreeAtZero;
          ws_.nonbasic_value[static_cast<std::size_t>(j)] = 0.0;
        }
        break;
      case SimplexBasis::Status::kBasic:
        break;
    }
  }

  // Residual b - A x of the current nonbasic starting point, with planned
  // basic columns (plan[r] >= 0) taken at `basic_guess[r]` instead.
  std::vector<double> starting_residual(const std::vector<int>& plan,
                                        const std::vector<double>& basic_guess) const {
    std::vector<double> residual = ws_.rhs;
    std::vector<double> value(static_cast<std::size_t>(first_artificial_), 0.0);
    for (int j = 0; j < first_artificial_; ++j) {
      value[static_cast<std::size_t>(j)] =
          ws_.nonbasic_value[static_cast<std::size_t>(j)];
    }
    for (int r = 0; r < ws_.m; ++r) {
      if (plan[static_cast<std::size_t>(r)] >= 0) {
        value[static_cast<std::size_t>(plan[static_cast<std::size_t>(r)])] =
            basic_guess[static_cast<std::size_t>(r)];
      }
    }
    for (int j = 0; j < first_artificial_; ++j) {
      const double xj = value[static_cast<std::size_t>(j)];
      if (xj == 0.0) continue;
      for (const auto& entry : ws_.columns[static_cast<std::size_t>(j)]) {
        residual[static_cast<std::size_t>(entry.var)] -= entry.value * xj;
      }
    }
    return residual;
  }

  // Tries to seat the hinted basis: hinted columns stay basic in their rows,
  // rows beyond the hint (or hinted-artificial rows) get a fresh artificial
  // sized to absorb the residual. Falls back (returns false, state restored)
  // if the hint is inconsistent, the basis is singular, or the implied basic
  // point is primal-infeasible — primal phase 1 can only repair artificials.
  bool install_warm_basis(const SimplexBasis& warm) {
    const int n = ws_.num_structural;
    const int m = ws_.m;
    std::vector<int> plan(static_cast<std::size_t>(m), -1);  // -1 = artificial
    std::vector<char> used(static_cast<std::size_t>(first_artificial_), 0);
    for (int r = 0; r < warm.num_rows(); ++r) {
      const SimplexBasis::Entry entry = warm.basic[static_cast<std::size_t>(r)];
      int col = -1;
      if (entry.kind == SimplexBasis::Kind::kStructural) {
        if (entry.index < 0 || entry.index >= warm.num_structural()) return false;
        col = entry.index;
      } else if (entry.kind == SimplexBasis::Kind::kSlack) {
        if (entry.index < 0 || entry.index >= warm.num_rows()) return false;
        col = n + entry.index;
      } else {
        continue;  // artificial row
      }
      if (used[static_cast<std::size_t>(col)]) return false;
      used[static_cast<std::size_t>(col)] = 1;
      plan[static_cast<std::size_t>(r)] = col;
    }

    std::vector<double> basic_guess(static_cast<std::size_t>(m), 0.0);
    for (int r = 0; r < warm.num_rows(); ++r) {
      basic_guess[static_cast<std::size_t>(r)] =
          warm.basic_value[static_cast<std::size_t>(r)];
    }
    const std::vector<double> residual = starting_residual(plan, basic_guess);

    const std::vector<VarStatus> status_backup = ws_.status;
    for (int r = 0; r < m; ++r) {
      int col = plan[static_cast<std::size_t>(r)];
      if (col < 0) {
        col = first_artificial_ + r;
        const double sgn = residual[static_cast<std::size_t>(r)] >= 0.0 ? 1.0 : -1.0;
        ws_.columns[static_cast<std::size_t>(col)].assign(1, {r, sgn});
        ws_.basic_value[static_cast<std::size_t>(r)] =
            std::abs(residual[static_cast<std::size_t>(r)]);
      } else {
        ws_.basic_value[static_cast<std::size_t>(r)] =
            basic_guess[static_cast<std::size_t>(r)];
      }
      ws_.status[static_cast<std::size_t>(col)] = VarStatus::kBasic;
      ws_.basis[static_cast<std::size_t>(r)] = col;
    }

    bool ok = refactorize();  // also recomputes the basic values exactly
    if (ok) {
      const double tol = 1e3 * options_.feasibility_tol;
      for (int r = 0; r < m && ok; ++r) {
        const int b = ws_.basis[static_cast<std::size_t>(r)];
        const double v = ws_.basic_value[static_cast<std::size_t>(r)];
        ok = v >= ws_.lower[static_cast<std::size_t>(b)] - tol &&
             v <= ws_.upper[static_cast<std::size_t>(b)] + tol;
      }
    }
    if (!ok) {
      ws_.status = status_backup;
      for (int r = 0; r < m; ++r) {
        ws_.columns[static_cast<std::size_t>(first_artificial_ + r)].clear();
      }
      return false;
    }
    return true;
  }

  // The all-artificial cold basis (also the warm-start fallback), absorbing
  // whatever residual the current nonbasic starting point leaves.
  void install_artificial_basis() {
    const int m = ws_.m;
    const std::vector<int> no_plan(static_cast<std::size_t>(m), -1);
    const std::vector<double> residual =
        starting_residual(no_plan, std::vector<double>(static_cast<std::size_t>(m), 0.0));
    std::vector<double> signs(static_cast<std::size_t>(m), 1.0);
    for (int i = 0; i < m; ++i) {
      const int art = first_artificial_ + i;
      const double sign = residual[static_cast<std::size_t>(i)] >= 0.0 ? 1.0 : -1.0;
      signs[static_cast<std::size_t>(i)] = sign;
      ws_.columns[static_cast<std::size_t>(art)].assign(1, {i, sign});
      ws_.status[static_cast<std::size_t>(art)] = VarStatus::kBasic;
      ws_.basis[static_cast<std::size_t>(i)] = art;
      ws_.basic_value[static_cast<std::size_t>(i)] =
          std::abs(residual[static_cast<std::size_t>(i)]);
    }
    basis_.reset_diagonal(m, signs);  // inverse of the +-1 diagonal basis
  }

  double current_objective(const std::vector<double>& cost) const {
    double obj = 0.0;
    for (int j = 0; j < ws_.total; ++j) {
      if (ws_.status[static_cast<std::size_t>(j)] != VarStatus::kBasic) {
        obj += cost[static_cast<std::size_t>(j)] *
               ws_.nonbasic_value[static_cast<std::size_t>(j)];
      }
    }
    for (int r = 0; r < ws_.m; ++r) {
      obj += cost[static_cast<std::size_t>(ws_.basis[static_cast<std::size_t>(r)])] *
             ws_.basic_value[static_cast<std::size_t>(r)];
    }
    return obj;
  }

  // y = c_B^T B^-1 via BTRAN through the kernel.
  void compute_duals(const std::vector<double>& cost, std::vector<double>& y) {
    cb_.assign(static_cast<std::size_t>(ws_.m), 0.0);
    for (int r = 0; r < ws_.m; ++r) {
      cb_[static_cast<std::size_t>(r)] =
          cost[static_cast<std::size_t>(ws_.basis[static_cast<std::size_t>(r)])];
    }
    basis_.btran(cb_, y);
  }

  double reduced_cost(int j, const std::vector<double>& cost,
                      const std::vector<double>& y) const {
    double d = cost[static_cast<std::size_t>(j)];
    for (const auto& entry : ws_.columns[static_cast<std::size_t>(j)]) {
      d -= y[static_cast<std::size_t>(entry.var)] * entry.value;
    }
    return d;
  }

  // Rebuilds the dense anchor inverse from the current basis columns, then
  // recomputes the basic values.
  bool refactorize() {
    basis_cols_.clear();
    basis_cols_.reserve(static_cast<std::size_t>(ws_.m));
    for (int r = 0; r < ws_.m; ++r) {
      basis_cols_.push_back(
          &ws_.columns[static_cast<std::size_t>(ws_.basis[static_cast<std::size_t>(r)])]);
    }
    if (!basis_.refactorize(basis_cols_)) return false;
    recompute_basic_values();
    return true;
  }

  void recompute_basic_values() {
    // x_B = B^-1 (b - N x_N)
    std::vector<double> rhs = ws_.rhs;
    for (int j = 0; j < ws_.total; ++j) {
      if (ws_.status[static_cast<std::size_t>(j)] == VarStatus::kBasic) continue;
      const double xj = ws_.nonbasic_value[static_cast<std::size_t>(j)];
      if (xj == 0.0) continue;
      for (const auto& entry : ws_.columns[static_cast<std::size_t>(j)]) {
        rhs[static_cast<std::size_t>(entry.var)] -= entry.value * xj;
      }
    }
    basis_.apply_inverse(rhs, ws_.basic_value);
  }

  // Legacy-ordered segment scan for the entering variable: strictly-better
  // merit wins; an equal merit at a lower column index wins only across the
  // wrap of a rotated window (within one ascending segment the first-seen
  // candidate already has the lowest index, exactly the historical rule).
  void price_segment(int begin, int end, const std::vector<double>& cost,
                     const std::vector<double>& y, bool devex,
                     const std::vector<double>& devex_weight,
                     double& best_merit, int& entering, double& entering_dir) const {
    for (int j = begin; j < end; ++j) {
      const VarStatus st = ws_.status[static_cast<std::size_t>(j)];
      if (st == VarStatus::kBasic) continue;
      // Locked variables (fixed artificials, equality slacks) cannot move.
      if (ws_.lower[static_cast<std::size_t>(j)] ==
          ws_.upper[static_cast<std::size_t>(j)]) {
        continue;
      }
      const double d = reduced_cost(j, cost, y);
      double score = 0.0;
      double dir = 0.0;
      if ((st == VarStatus::kAtLower || st == VarStatus::kFreeAtZero) &&
          d < -options_.optimality_tol) {
        score = -d;
        dir = 1.0;
      } else if ((st == VarStatus::kAtUpper || st == VarStatus::kFreeAtZero) &&
                 d > options_.optimality_tol) {
        score = d;
        dir = -1.0;
      }
      if (score <= 0.0) continue;
      const double merit =
          devex ? score * score / devex_weight[static_cast<std::size_t>(j)]
                : score;
      if (merit > best_merit ||
          (merit == best_merit && entering >= 0 && j < entering)) {
        best_merit = merit;
        entering = j;
        entering_dir = dir;
      }
    }
  }

  // Entering-variable selection. Full pricing scans every column; partial
  // pricing scans the rotating candidate window, advancing it only when the
  // window prices out, and declares optimality only after a full rotation
  // finds no eligible column — the optimality conditions are identical to a
  // full pass, only the pivot path differs.
  int select_entering(const std::vector<double>& cost,
                      const std::vector<double>& y, bool use_bland, bool devex,
                      const std::vector<double>& devex_weight,
                      double& entering_dir) {
    if (use_bland) {  // first eligible index, every column
      for (int j = 0; j < ws_.total; ++j) {
        const VarStatus st = ws_.status[static_cast<std::size_t>(j)];
        if (st == VarStatus::kBasic) continue;
        if (ws_.lower[static_cast<std::size_t>(j)] ==
            ws_.upper[static_cast<std::size_t>(j)]) {
          continue;
        }
        const double d = reduced_cost(j, cost, y);
        if ((st == VarStatus::kAtLower || st == VarStatus::kFreeAtZero) &&
            d < -options_.optimality_tol) {
          entering_dir = 1.0;
          return j;
        }
        if ((st == VarStatus::kAtUpper || st == VarStatus::kFreeAtZero) &&
            d > options_.optimality_tol) {
          entering_dir = -1.0;
          return j;
        }
      }
      return -1;
    }

    const double merit_floor = devex ? 0.0 : options_.optimality_tol;
    int entering = -1;
    if (pricing_window_ >= ws_.total) {
      double best_merit = merit_floor;
      price_segment(0, ws_.total, cost, y, devex, devex_weight, best_merit,
                    entering, entering_dir);
      return entering;
    }
    const int windows = (ws_.total + pricing_window_ - 1) / pricing_window_;
    for (int attempt = 0; attempt < windows; ++attempt) {
      double best_merit = merit_floor;
      const int begin = pricing_offset_;
      const int end = begin + pricing_window_;
      price_segment(begin, std::min(end, ws_.total), cost, y, devex,
                    devex_weight, best_merit, entering, entering_dir);
      if (end > ws_.total) {
        price_segment(0, end - ws_.total, cost, y, devex, devex_weight,
                      best_merit, entering, entering_dir);
      }
      if (entering >= 0) return entering;
      pricing_offset_ = end % ws_.total;
    }
    return -1;
  }

  // Applies fn(j) to every column the current pricing pass covers: the
  // active window under partial pricing, every column otherwise. The devex
  // weight update iterates the same set — weights outside the window go
  // stale (too small), which only overstates those columns' merit when the
  // window rotates onto them; path quality, never correctness.
  template <typename Fn>
  void for_each_priced(bool full, Fn&& fn) const {
    if (full || pricing_window_ >= ws_.total) {
      for (int j = 0; j < ws_.total; ++j) fn(j);
      return;
    }
    const int begin = pricing_offset_;
    const int end = begin + pricing_window_;
    for (int j = begin; j < std::min(end, ws_.total); ++j) fn(j);
    if (end > ws_.total) {
      for (int j = 0; j < end - ws_.total; ++j) fn(j);
    }
  }

  SolveStatus optimize(const std::vector<double>& cost, bool phase1,
                       int& total_iters) {
    const int m = ws_.m;
    const int max_iters =
        options_.max_iterations > 0
            ? options_.max_iterations
            : 2000 + 40 * (ws_.total + m);
    std::vector<double> w(static_cast<std::size_t>(m), 0.0);
    std::vector<double> y;
    int degenerate_streak = 0;
    basis_.reset_refactor_counter();

    // Dual maintenance. The historical kernel recomputes y = c_B^T B^-1 by
    // a full BTRAN every pivot — the single most expensive operation in the
    // solve (phase 1's all-artificial cost vector makes c_B dense). The eta
    // kernel instead updates the duals in O(m) per pivot from the identity
    // y' = y + (d_q / w_r) * rho, where d_q is the entering column's reduced
    // cost, w_r the pivot element, and rho the (pre-pivot) devex pivot row
    // it already computes. Accumulated rounding is bounded by refreshing the
    // duals at every reinversion, and optimality is never declared on
    // updated duals: pricing out triggers one exact recompute and a
    // re-price, so the termination conditions match the historical kernel's.
    // The Bland anti-cycling regime also recomputes exactly every pivot —
    // its guarantees assume exact reduced costs.
    const bool incremental_duals = basis_.kernel() == BasisKernel::kEtaFile;
    bool y_valid = false;  // y matches the current basis (exactly or updated)
    bool y_exact = false;  // y came from a full BTRAN, not O(m) updates

    // Devex reference framework (Forrest & Goldfarb): every nonbasic column
    // starts at weight 1 (the phase's starting nonbasic set is the reference
    // frame) and the weights track approximate steepest-edge norms as the
    // basis walks away from it. The frame is re-anchored when the largest
    // weight outgrows its trust window. Eligibility (reduced cost beyond the
    // optimality tolerance) is identical to Dantzig's, so the pricing rule
    // changes only the pivot path, never the optimality conditions.
    //
    // Devex prices phase 2 only. The phase-1 composite objective is
    // transient and its all-artificial starting basis makes the reference
    // frame uninformative — measured on this workload, devex phase 1 costs
    // 15-20% more pivots than Dantzig, while devex phase 2 saves 8% across
    // the Benders pipeline's warm re-solves.
    const bool devex = options_.pricing == PricingRule::kDevex && !phase1;
    std::vector<double> devex_weight;
    if (devex) devex_weight.assign(static_cast<std::size_t>(ws_.total), 1.0);
    constexpr double kDevexResetThreshold = 1e7;

    for (int iter = 0; iter < max_iters; ++iter, ++total_iters) {
      // Cooperative deadline: checked before the pivot so the overrun past
      // expiry is at most the pivot in flight. Each loop iteration (pivot or
      // bound flip) charges one pivot, making pivot-budget expiry a pure
      // function of the work done — deterministic at any thread count.
      if (options_.deadline != nullptr) {
        if (options_.deadline->expired()) return SolveStatus::kIterationLimit;
        options_.deadline->charge_pivots();
      }
      // Pricing.
      const bool use_bland = degenerate_streak > options_.degenerate_pivot_limit;
      if (!incremental_duals || use_bland || !y_valid) {
        compute_duals(cost, y);
        y_valid = true;
        y_exact = true;
      }
      double entering_dir = 0.0;
      int entering =
          select_entering(cost, y, use_bland, devex, devex_weight, entering_dir);
      if (entering < 0 && incremental_duals && !y_exact) {
        // Priced out on updated duals: verify against an exact recompute
        // before declaring dual feasibility.
        compute_duals(cost, y);
        y_exact = true;
        entering = select_entering(cost, y, use_bland, devex, devex_weight,
                                   entering_dir);
      }
      if (entering < 0) return SolveStatus::kOptimal;  // dual feasible

      basis_.ftran(ws_.columns[static_cast<std::size_t>(entering)], w);

      // Ratio test. The entering variable moves by t >= 0 in direction
      // entering_dir; basic variable r changes at rate -entering_dir * w[r].
      double t_max = ws_.upper[static_cast<std::size_t>(entering)] -
                     ws_.lower[static_cast<std::size_t>(entering)];
      if (!std::isfinite(t_max)) t_max = kInfinity;
      int leaving = -1;  // row index of the blocking basic variable
      bool leaving_to_upper = false;
      double best_pivot_mag = 0.0;
      constexpr double kPivotTol = 1e-9;
      for (int r = 0; r < m; ++r) {
        const double rate = -entering_dir * w[static_cast<std::size_t>(r)];
        if (std::abs(rate) < kPivotTol) continue;
        const int b = ws_.basis[static_cast<std::size_t>(r)];
        const double xb = ws_.basic_value[static_cast<std::size_t>(r)];
        double limit = kInfinity;
        bool to_upper = false;
        if (rate < 0.0) {  // decreasing toward its lower bound
          const double lb = ws_.lower[static_cast<std::size_t>(b)];
          if (std::isfinite(lb)) limit = (xb - lb) / (-rate);
        } else {  // increasing toward its upper bound
          const double ub = ws_.upper[static_cast<std::size_t>(b)];
          if (std::isfinite(ub)) {
            limit = (ub - xb) / rate;
            to_upper = true;
          }
        }
        if (limit < -1e-12) limit = 0.0;
        if (limit < t_max - 1e-12 ||
            (limit < t_max + 1e-12 &&
             std::abs(w[static_cast<std::size_t>(r)]) > best_pivot_mag)) {
          t_max = std::max(limit, 0.0);
          leaving = r;
          leaving_to_upper = to_upper;
          best_pivot_mag = std::abs(w[static_cast<std::size_t>(r)]);
        }
      }

      if (!std::isfinite(t_max)) {
        return phase1 ? SolveStatus::kInfeasible : SolveStatus::kUnbounded;
      }
      degenerate_streak = t_max < 1e-11 ? degenerate_streak + 1 : 0;

      // Apply the step to the basic values.
      if (t_max > 0.0) {
        for (int r = 0; r < m; ++r) {
          ws_.basic_value[static_cast<std::size_t>(r)] -=
              t_max * entering_dir * w[static_cast<std::size_t>(r)];
        }
      }

      if (leaving < 0) {
        // Bound flip: the entering variable runs to its opposite bound.
        auto& st = ws_.status[static_cast<std::size_t>(entering)];
        st = entering_dir > 0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
        ws_.nonbasic_value[static_cast<std::size_t>(entering)] =
            entering_dir > 0 ? ws_.upper[static_cast<std::size_t>(entering)]
                             : ws_.lower[static_cast<std::size_t>(entering)];
        continue;
      }

      // Pivot: entering becomes basic in row `leaving`.
      const int leave_var = ws_.basis[static_cast<std::size_t>(leaving)];
      const double entering_value =
          ws_.nonbasic_value[static_cast<std::size_t>(entering)] +
          entering_dir * t_max;

      ws_.status[static_cast<std::size_t>(leave_var)] =
          leaving_to_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
      ws_.nonbasic_value[static_cast<std::size_t>(leave_var)] =
          leaving_to_upper ? ws_.upper[static_cast<std::size_t>(leave_var)]
                           : ws_.lower[static_cast<std::size_t>(leave_var)];
      ws_.status[static_cast<std::size_t>(entering)] = VarStatus::kBasic;
      ws_.basis[static_cast<std::size_t>(leaving)] = entering;
      ws_.basic_value[static_cast<std::size_t>(leaving)] = entering_value;

      // The pre-pivot row of the inverse serves both the devex weight update
      // and the incremental dual update, so one kernel call covers both.
      const bool need_rho = devex || (incremental_duals && !use_bland);
      if (need_rho) basis_.pivot_row(leaving, rho_);
      if (incremental_duals && !use_bland) {
        const double d_q = reduced_cost(entering, cost, y);
        const double theta_d = d_q / w[static_cast<std::size_t>(leaving)];
        if (theta_d != 0.0) {
          for (int i = 0; i < m; ++i) {
            y[static_cast<std::size_t>(i)] +=
                theta_d * rho_[static_cast<std::size_t>(i)];
          }
        }
        y_exact = false;
      } else {
        y_valid = false;  // pivot without a dual update: recompute next pass
      }

      if (devex) {
        // Reference-framework update: with entering weight gamma_q and pivot
        // element alpha_q = w[leaving], every priced nonbasic column j
        // updates to max(gamma_j, (alpha_j / alpha_q)^2 * gamma_q) where
        // alpha_j is its pivot-row entry under the *pre-pivot* inverse; the
        // leaving column gets max(gamma_q / alpha_q^2, 1). Bound flips above
        // skip this — the basis (and hence the framework geometry) did not
        // change.
        const double gamma_q = devex_weight[static_cast<std::size_t>(entering)];
        const double alpha_q = w[static_cast<std::size_t>(leaving)];
        const double alpha_q_sq = alpha_q * alpha_q;
        double max_weight = 1.0;
        for_each_priced(use_bland, [&](int j) {
          if (j == entering || j == leave_var) return;
          if (ws_.status[static_cast<std::size_t>(j)] == VarStatus::kBasic) {
            return;
          }
          if (ws_.lower[static_cast<std::size_t>(j)] ==
              ws_.upper[static_cast<std::size_t>(j)]) {
            return;  // locked columns never price, so their weight is dead
          }
          double alpha_j = 0.0;
          for (const auto& entry : ws_.columns[static_cast<std::size_t>(j)]) {
            alpha_j += rho_[static_cast<std::size_t>(entry.var)] * entry.value;
          }
          if (alpha_j != 0.0) {
            double& g = devex_weight[static_cast<std::size_t>(j)];
            const double cand = (alpha_j * alpha_j / alpha_q_sq) * gamma_q;
            if (cand > g) g = cand;
            if (g > max_weight) max_weight = g;
          }
        });
        double& g_leave = devex_weight[static_cast<std::size_t>(leave_var)];
        g_leave = std::max(gamma_q / alpha_q_sq, 1.0);
        if (g_leave > max_weight) max_weight = g_leave;
        devex_weight[static_cast<std::size_t>(entering)] = 1.0;
        if (max_weight > kDevexResetThreshold) {
          // Re-anchor the reference frame at the current nonbasic set.
          std::fill(devex_weight.begin(), devex_weight.end(), 1.0);
        }
      }

      // Kernel pivot accounting: dense elimination or an eta append; a true
      // return means the periodic interval or the drift trigger fired.
      if (basis_.update(leaving, w)) {
        if (!refactorize()) return SolveStatus::kIterationLimit;
        y_valid = false;  // refresh the duals from the clean anchor
      }
    }
    return SolveStatus::kIterationLimit;
  }

  SimplexOptions options_;
  Workspace ws_;
  BasisState basis_;
  int first_artificial_ = 0;
  int pricing_window_ = 0;
  int pricing_offset_ = 0;
  std::vector<const std::vector<Coefficient>*> basis_cols_;
  std::vector<double> cb_;
  std::vector<double> rho_;
};

}  // namespace

Solution SimplexSolver::solve(const Model& model, const SimplexBasis* warm,
                              SimplexBasis* basis_out) const {
  if (model.num_rows() == 0) {
    // Pure bound problem: each variable sits at whichever bound its cost
    // prefers; unbounded if the preferred direction has no finite bound.
    Solution solution;
    solution.status = SolveStatus::kOptimal;
    solution.x.assign(static_cast<std::size_t>(model.num_variables()), 0.0);
    const double sign = model.sense() == Sense::kMaximize ? -1.0 : 1.0;
    for (int j = 0; j < model.num_variables(); ++j) {
      const Variable& v = model.variable(j);
      const double c = sign * v.objective;
      double x = 0.0;
      if (c > 0) {
        x = v.lower;
      } else if (c < 0) {
        x = v.upper;
      } else {
        x = bound_start_value(v.lower, v.upper);
      }
      if (!std::isfinite(x)) {
        solution.status = SolveStatus::kUnbounded;
        return solution;
      }
      solution.x[static_cast<std::size_t>(j)] = x;
    }
    solution.objective = model.objective_value(solution.x);
    return solution;
  }
  SimplexEngine engine(model, options_, warm);
  Solution solution = engine.run(model);
  solution.reinversions = engine.kernel_stats().reinversions;
  solution.eta_peak = engine.kernel_stats().eta_peak;
  solution.lu_reinversions = engine.kernel_stats().lu_reinversions;
  if (basis_out != nullptr && solution.status == SolveStatus::kOptimal) {
    engine.export_basis(*basis_out);
  }
  return solution;
}

}  // namespace prete::lp
