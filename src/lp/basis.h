#pragma once

#include <cstdint>
#include <vector>

#include "lp/lu.h"
#include "lp/model.h"
#include "util/arena.h"

namespace prete::lp {

// Representation of the basis inverse maintained by the revised-simplex
// kernel.
//
// kDenseBinv is the original kernel: an explicit dense m x m inverse updated
// by Gauss-Jordan elimination at every pivot — O(m^2) per pivot on top of
// the O(m^2) BTRAN/FTRAN passes, which dominates everything on TWAN-scale
// masters.
//
// kEtaFile is the product-form-of-inverse kernel: the dense inverse is only
// materialized at reinversion points (the "anchor"), and the pivots since
// then live as an eta file — one sparse pivot column per pivot, applied in
// sequence during FTRAN and in reverse during BTRAN. A pivot costs
// O(nnz(w)) instead of O(m^2), and the anchor is rebuilt by a single-pass
// in-place Gauss-Jordan (half the arithmetic of the historical widened
// (B | I) sweep — reinversion dominates TWAN-scale masters, so this is
// where the kernel banks most of its win). The eta file is collapsed back
// into a fresh anchor every `refactor_interval` pivots, or early when an
// appended eta's magnitude spread signals numerical drift of the product
// form.
//
// The eta kernel's anchor itself has two representations, auto-selected by
// basis dimension at every refactorize/reset: below `lu_threshold` rows the
// explicit dense inverse above; at or above it a Markowitz-ordered sparse LU
// factorization (lp::LuFactorization) whose memory and reinversion cost
// track the basis nonzero count instead of m^2 — the regime of the
// thousand-row continental masters. Both anchors feed the same eta file.
enum class BasisKernel : std::uint8_t { kDenseBinv, kEtaFile };

// The basis-inverse state shared by both kernels. One instance serves one
// solve; nothing here is thread-safe (concurrent solves each own their
// engine, and with it their BasisState).
//
// The dense-kernel code paths reproduce the pre-eta kernel's floating-point
// operation order exactly, so kDenseBinv solves are bit-compatible with the
// historical solver and serve as the reference in kernel-equivalence tests
// and the bench gate.
class BasisState {
 public:
  struct Stats {
    int reinversions = 0;  // anchor refactorizations performed
    int eta_peak = 0;      // longest eta file reached between reinversions
    int drift_reinversions = 0;  // reinversions forced by the drift trigger
    int lu_reinversions = 0;     // reinversions that built a sparse LU anchor
  };

  // `refactor_interval` <= 0 refactorizes after every pivot. `lu_threshold`
  // is the basis dimension at or above which the eta kernel's anchor
  // switches from the explicit dense inverse to the sparse LU (tests force a
  // side with 1 / a huge value; the default is calibrated by the lu_anchor
  // bench phase).
  void configure(BasisKernel kernel, int refactor_interval,
                 int lu_threshold = 512);

  BasisKernel kernel() const { return kernel_; }

  // True when the current anchor is the sparse LU factorization.
  bool anchor_is_lu() const { return anchor_is_lu_; }

  // Resets to the inverse of a +-1 diagonal basis (the all-artificial cold
  // start): rows_ = diag(signs). Clears the eta file.
  void reset_diagonal(int m, const std::vector<double>& signs);

  // Rebuilds the dense anchor inverse from the current basis columns —
  // the historical widened (B | I) Gauss-Jordan for the dense kernel, the
  // single-pass in-place variant for the eta kernel (same pivot sequence,
  // half the arithmetic) — and clears the eta file. `basis_columns[r]` is
  // the sparse column basic in row r. Returns false on a numerically
  // singular basis (state then undefined until the next successful
  // refactorize or reset).
  bool refactorize(const std::vector<const std::vector<Coefficient>*>& basis_columns);

  // Restarts the periodic-reinversion pivot counter (the engine calls this
  // at the start of each simplex phase, mirroring the historical kernel's
  // per-phase refactor cadence).
  void reset_refactor_counter() { pivots_since_refactor_ = 0; }

  // w = B^-1 a for a sparse column a. w is overwritten (size m).
  void ftran(const std::vector<Coefficient>& a, std::vector<double>& w) const;

  // y = v^T B^-1 for a dense row vector v. Zero entries of v skip their
  // anchor row; the eta transposes are applied in reverse order first.
  void btran(const std::vector<double>& v, std::vector<double>& y) const;

  // rho = e_r^T B^-1, row r of the current inverse — the devex pivot row.
  void pivot_row(int r, std::vector<double>& rho) const;

  // x = B^-1 v for a dense column vector v (basic-value recomputation).
  void apply_inverse(const std::vector<double>& v, std::vector<double>& x) const;

  // Accounts the pivot whose FTRANed entering column is w, landing in basis
  // row r. The dense kernel performs the O(m^2) elimination; the eta kernel
  // appends a pivot column in O(nnz(w)). Returns true when the caller must
  // refactorize before the next iteration: the periodic interval was
  // reached, or (eta kernel) the appended column's magnitude spread
  // |w_i| / |w_r| crossed the drift threshold — the forward-error growth of
  // the product form is proportional to that ratio, so a large spread means
  // the represented inverse is drifting from the true one.
  bool update(int r, const std::vector<double>& w);

  const Stats& stats() const { return stats_; }

  // Current eta-file length (pivot columns held since the last anchor).
  int eta_length() const { return static_cast<int>(eta_row_.size()); }

 private:
  // Magnitude spread beyond which an appended eta forces early reinversion.
  static constexpr double kDriftThreshold = 1e7;

  void clear_etas();

  int m_ = 0;
  BasisKernel kernel_ = BasisKernel::kEtaFile;
  int refactor_interval_ = 128;
  int lu_threshold_ = 512;
  int pivots_since_refactor_ = 0;
  bool anchor_is_lu_ = false;

  // Sparse LU anchor (eta kernel, m >= lu_threshold_) and the arena backing
  // its elimination workspace across reinversions.
  LuFactorization lu_;
  util::Arena lu_arena_;

  // Dense anchor inverse, row-major (BTRAN reads rows contiguously).
  std::vector<double> rows_;
  // Column-major mirror of the anchor, eta kernel only (FTRAN reads columns
  // contiguously; the dense kernel keeps its historical strided access).
  std::vector<double> cols_;
  // Row swap chosen at each in-place Gauss-Jordan step (eta reinversion
  // only), undone as column swaps once the sweep finishes.
  std::vector<int> pivot_rows_;

  // Flat eta file: eta k pivots on row eta_row_[k] with 1/pivot
  // eta_pivot_inv_[k]; its off-pivot nonzeros live in
  // eta_idx_/eta_val_[eta_start_[k] .. eta_start_[k + 1]).
  std::vector<int> eta_row_;
  std::vector<double> eta_pivot_inv_;
  std::vector<int> eta_start_;
  std::vector<int> eta_idx_;
  std::vector<double> eta_val_;

  // Scratch for BTRAN-style passes that transform a copy of the input.
  mutable std::vector<double> scratch_;

  // Member scratch buffers for the dense refactorization paths, reused
  // across reinversions (swapped with rows_, never moved from — a move
  // would steal the buffer back out and reintroduce the per-reinversion
  // O(m^2) allocation this exists to remove).
  std::vector<double> dense_scratch_;
  std::vector<double> inv_scratch_;
  // Per-column max input magnitude of the basis being refactorized — the
  // reference scale for the relative singularity test.
  std::vector<double> col_scale_;

  Stats stats_;
};

}  // namespace prete::lp
