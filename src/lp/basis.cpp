#include "lp/basis.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace prete::lp {

void BasisState::configure(BasisKernel kernel, int refactor_interval,
                           int lu_threshold) {
  kernel_ = kernel;
  refactor_interval_ = refactor_interval;
  lu_threshold_ = lu_threshold;
}

void BasisState::clear_etas() {
  eta_row_.clear();
  eta_pivot_inv_.clear();
  eta_idx_.clear();
  eta_val_.clear();
  eta_start_.assign(1, 0);
}

void BasisState::reset_diagonal(int m, const std::vector<double>& signs) {
  m_ = m;
  anchor_is_lu_ = kernel_ == BasisKernel::kEtaFile && m >= lu_threshold_;
  if (anchor_is_lu_) {
    // Trivial LU of diag(signs) — no O(m^2) buffer ever materializes.
    lu_.reset_diagonal(m, signs);
    rows_.clear();
    cols_.clear();
    clear_etas();
    pivots_since_refactor_ = 0;
    return;
  }
  rows_.assign(static_cast<std::size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) {
    rows_[static_cast<std::size_t>(i) * m + i] = signs[static_cast<std::size_t>(i)];
  }
  if (kernel_ == BasisKernel::kEtaFile) {
    cols_ = rows_;  // a diagonal matrix is its own transpose
  }
  clear_etas();
  pivots_since_refactor_ = 0;
}

bool BasisState::refactorize(
    const std::vector<const std::vector<Coefficient>*>& basis_columns) {
  const int m = static_cast<int>(basis_columns.size());
  m_ = m;
  anchor_is_lu_ = kernel_ == BasisKernel::kEtaFile && m >= lu_threshold_;
  if (anchor_is_lu_) {
    if (!lu_.factorize(basis_columns, lu_arena_)) return false;
    rows_.clear();
    cols_.clear();
    clear_etas();
    pivots_since_refactor_ = 0;
    ++stats_.reinversions;
    ++stats_.lu_reinversions;
    return true;
  }

  // Dense-anchor paths. The O(m^2) workspaces are members reused across
  // reinversions (and swapped — not moved — into rows_ at the end), so
  // steady-state reinversion no longer touches the heap.
  std::vector<double>& dense = dense_scratch_;
  dense.assign(static_cast<std::size_t>(m) * m, 0.0);
  col_scale_.assign(static_cast<std::size_t>(m), 0.0);
  for (int c = 0; c < m; ++c) {
    for (const auto& entry : *basis_columns[static_cast<std::size_t>(c)]) {
      dense[static_cast<std::size_t>(entry.var) * m + c] = entry.value;
      const double mag = std::abs(entry.value);
      if (mag > col_scale_[static_cast<std::size_t>(c)]) {
        col_scale_[static_cast<std::size_t>(c)] = mag;
      }
    }
  }

  if (kernel_ == BasisKernel::kDenseBinv) {
    // Historical path: Gauss-Jordan over the widened (B | I) pair,
    // bit-compatible with the pre-eta kernel.
    std::vector<double>& inv = inv_scratch_;
    inv.assign(static_cast<std::size_t>(m) * m, 0.0);
    for (int i = 0; i < m; ++i) inv[static_cast<std::size_t>(i) * m + i] = 1.0;

    for (int col = 0; col < m; ++col) {
      int pivot = col;
      double best = std::abs(dense[static_cast<std::size_t>(col) * m + col]);
      for (int r = col + 1; r < m; ++r) {
        const double v = std::abs(dense[static_cast<std::size_t>(r) * m + col]);
        if (v > best) {
          best = v;
          pivot = r;
        }
      }
      // Relative singularity: the eliminated column's best pivot collapsed
      // against the column's input magnitude. An absolute cutoff here
      // misclassifies badly scaled (but perfectly conditioned) bases — a
      // basis scaled by 1e-13 is not singular.
      if (best <= 1e-12 * col_scale_[static_cast<std::size_t>(col)]) {
        return false;  // numerically singular basis
      }
      if (pivot != col) {
        for (int c = 0; c < m; ++c) {
          std::swap(dense[static_cast<std::size_t>(pivot) * m + c],
                    dense[static_cast<std::size_t>(col) * m + c]);
          std::swap(inv[static_cast<std::size_t>(pivot) * m + c],
                    inv[static_cast<std::size_t>(col) * m + c]);
        }
      }
      const double piv = dense[static_cast<std::size_t>(col) * m + col];
      const double inv_piv = 1.0 / piv;
      for (int c = 0; c < m; ++c) {
        dense[static_cast<std::size_t>(col) * m + c] *= inv_piv;
        inv[static_cast<std::size_t>(col) * m + c] *= inv_piv;
      }
      for (int r = 0; r < m; ++r) {
        if (r == col) continue;
        const double factor = dense[static_cast<std::size_t>(r) * m + col];
        if (factor == 0.0) continue;
        for (int c = 0; c < m; ++c) {
          dense[static_cast<std::size_t>(r) * m + c] -=
              factor * dense[static_cast<std::size_t>(col) * m + c];
          inv[static_cast<std::size_t>(r) * m + c] -=
              factor * inv[static_cast<std::size_t>(col) * m + c];
        }
      }
    }
    rows_.swap(inv);
  } else {
    // Eta-kernel reinversion: single-pass in-place Gauss-Jordan. The matrix
    // gradually becomes its own inverse (row swaps are undone as column
    // swaps at the end), so each elimination step touches m entries per row
    // instead of the 2m of the widened (B | I) sweep — reinversion is the
    // dominant cost on TWAN-scale masters, and this halves it. The pivot
    // sequence and per-entry arithmetic match the historical sweep exactly.
    pivot_rows_.resize(static_cast<std::size_t>(m));
    for (int col = 0; col < m; ++col) {
      int pivot = col;
      double best = std::abs(dense[static_cast<std::size_t>(col) * m + col]);
      for (int r = col + 1; r < m; ++r) {
        const double v = std::abs(dense[static_cast<std::size_t>(r) * m + col]);
        if (v > best) {
          best = v;
          pivot = r;
        }
      }
      // Relative singularity — see the dense-kernel sweep above.
      if (best <= 1e-12 * col_scale_[static_cast<std::size_t>(col)]) {
        return false;  // numerically singular basis
      }
      pivot_rows_[static_cast<std::size_t>(col)] = pivot;
      if (pivot != col) {
        std::swap_ranges(
            dense.begin() + static_cast<std::ptrdiff_t>(pivot) * m,
            dense.begin() + static_cast<std::ptrdiff_t>(pivot + 1) * m,
            dense.begin() + static_cast<std::ptrdiff_t>(col) * m);
      }
      const double inv_piv =
          1.0 / dense[static_cast<std::size_t>(col) * m + col];
      double* prow = dense.data() + static_cast<std::size_t>(col) * m;
      prow[col] = 1.0;
      for (int c = 0; c < m; ++c) prow[c] *= inv_piv;
      for (int r = 0; r < m; ++r) {
        if (r == col) continue;
        double* row = dense.data() + static_cast<std::size_t>(r) * m;
        const double factor = row[col];
        if (factor == 0.0) continue;
        row[col] = 0.0;
        for (int c = 0; c < m; ++c) {
          row[c] -= factor * prow[c];
        }
      }
    }
    for (int col = m - 1; col >= 0; --col) {
      const int pivot = pivot_rows_[static_cast<std::size_t>(col)];
      if (pivot == col) continue;
      for (int r = 0; r < m; ++r) {
        std::swap(dense[static_cast<std::size_t>(r) * m + pivot],
                  dense[static_cast<std::size_t>(r) * m + col]);
      }
    }
    rows_.swap(dense);
  }

  if (kernel_ == BasisKernel::kEtaFile) {
    cols_.resize(static_cast<std::size_t>(m) * m);
    for (int r = 0; r < m; ++r) {
      for (int c = 0; c < m; ++c) {
        cols_[static_cast<std::size_t>(c) * m + r] =
            rows_[static_cast<std::size_t>(r) * m + c];
      }
    }
  }
  clear_etas();
  pivots_since_refactor_ = 0;
  ++stats_.reinversions;
  return true;
}

void BasisState::ftran(const std::vector<Coefficient>& a,
                       std::vector<double>& w) const {
  std::fill(w.begin(), w.end(), 0.0);
  if (kernel_ == BasisKernel::kDenseBinv) {
    // Historical operation order: accumulate one sparse entry at a time down
    // the rows of the (strided) dense inverse.
    for (const auto& entry : a) {
      const double v = entry.value;
      if (v == 0.0) continue;
      const int c = entry.var;
      for (int r = 0; r < m_; ++r) {
        w[static_cast<std::size_t>(r)] +=
            v * rows_[static_cast<std::size_t>(r) * m_ + c];
      }
    }
    return;
  }
  // Anchor pass — sparse LU triangular solves for large bases, otherwise a
  // contiguous axpy per sparse entry against the column-major mirror — then
  // the eta file in forward order.
  if (anchor_is_lu_) {
    lu_.ftran(a, w);
  } else {
    for (const auto& entry : a) {
      const double v = entry.value;
      if (v == 0.0) continue;
      const double* col = cols_.data() + static_cast<std::size_t>(entry.var) * m_;
      for (int r = 0; r < m_; ++r) {
        w[static_cast<std::size_t>(r)] += v * col[r];
      }
    }
  }
  const std::size_t etas = eta_row_.size();
  for (std::size_t k = 0; k < etas; ++k) {
    const int r = eta_row_[k];
    const double t = w[static_cast<std::size_t>(r)] * eta_pivot_inv_[k];
    if (t != 0.0) {
      const int begin = eta_start_[k];
      const int end = eta_start_[k + 1];
      for (int p = begin; p < end; ++p) {
        w[static_cast<std::size_t>(eta_idx_[static_cast<std::size_t>(p)])] -=
            eta_val_[static_cast<std::size_t>(p)] * t;
      }
    }
    w[static_cast<std::size_t>(r)] = t;
  }
}

void BasisState::btran(const std::vector<double>& v,
                       std::vector<double>& y) const {
  y.assign(static_cast<std::size_t>(m_), 0.0);
  const std::vector<double>* src = &v;
  if (kernel_ == BasisKernel::kEtaFile && !eta_row_.empty()) {
    scratch_ = v;
    for (std::size_t k = eta_row_.size(); k-- > 0;) {
      const int r = eta_row_[k];
      double s = scratch_[static_cast<std::size_t>(r)];
      const int begin = eta_start_[k];
      const int end = eta_start_[k + 1];
      for (int p = begin; p < end; ++p) {
        s -= scratch_[static_cast<std::size_t>(
                 eta_idx_[static_cast<std::size_t>(p)])] *
             eta_val_[static_cast<std::size_t>(p)];
      }
      scratch_[static_cast<std::size_t>(r)] = s * eta_pivot_inv_[k];
    }
    src = &scratch_;
  }
  if (anchor_is_lu_) {
    lu_.btran(*src, y);
    return;
  }
  for (int r = 0; r < m_; ++r) {
    const double vr = (*src)[static_cast<std::size_t>(r)];
    if (vr == 0.0) continue;
    const double* row = rows_.data() + static_cast<std::size_t>(r) * m_;
    for (int c = 0; c < m_; ++c) {
      y[static_cast<std::size_t>(c)] += vr * row[c];
    }
  }
}

void BasisState::pivot_row(int r, std::vector<double>& rho) const {
  if (!anchor_is_lu_ &&
      (kernel_ == BasisKernel::kDenseBinv || eta_row_.empty())) {
    rho.assign(rows_.begin() + static_cast<std::ptrdiff_t>(r) * m_,
               rows_.begin() + static_cast<std::ptrdiff_t>(r + 1) * m_);
    return;
  }
  std::vector<double> unit(static_cast<std::size_t>(m_), 0.0);
  unit[static_cast<std::size_t>(r)] = 1.0;
  btran(unit, rho);
}

void BasisState::apply_inverse(const std::vector<double>& v,
                               std::vector<double>& x) const {
  if (anchor_is_lu_) {
    lu_.ftran_dense(v, x);
  } else {
    x.assign(static_cast<std::size_t>(m_), 0.0);
    for (int r = 0; r < m_; ++r) {
      const double* row = rows_.data() + static_cast<std::size_t>(r) * m_;
      double acc = 0.0;
      for (int c = 0; c < m_; ++c) {
        acc += row[c] * v[static_cast<std::size_t>(c)];
      }
      x[static_cast<std::size_t>(r)] = acc;
    }
  }
  if (kernel_ != BasisKernel::kEtaFile) return;
  const std::size_t etas = eta_row_.size();
  for (std::size_t k = 0; k < etas; ++k) {
    const int r = eta_row_[k];
    const double t = x[static_cast<std::size_t>(r)] * eta_pivot_inv_[k];
    if (t != 0.0) {
      const int begin = eta_start_[k];
      const int end = eta_start_[k + 1];
      for (int p = begin; p < end; ++p) {
        x[static_cast<std::size_t>(eta_idx_[static_cast<std::size_t>(p)])] -=
            eta_val_[static_cast<std::size_t>(p)] * t;
      }
    }
    x[static_cast<std::size_t>(r)] = t;
  }
}

bool BasisState::update(int r, const std::vector<double>& w) {
  ++pivots_since_refactor_;
  if (kernel_ == BasisKernel::kDenseBinv) {
    const double piv = w[static_cast<std::size_t>(r)];
    const double inv_piv = 1.0 / piv;
    double* pivot_row_data = rows_.data() + static_cast<std::size_t>(r) * m_;
    for (int c = 0; c < m_; ++c) pivot_row_data[c] *= inv_piv;
    for (int row = 0; row < m_; ++row) {
      if (row == r) continue;
      const double factor = w[static_cast<std::size_t>(row)];
      if (factor == 0.0) continue;
      double* dst = rows_.data() + static_cast<std::size_t>(row) * m_;
      for (int c = 0; c < m_; ++c) {
        dst[c] -= factor * pivot_row_data[c];
      }
    }
    return pivots_since_refactor_ >= refactor_interval_;
  }

  // Eta append: record w as a pivot column of the product form.
  const double piv = w[static_cast<std::size_t>(r)];
  eta_row_.push_back(r);
  eta_pivot_inv_.push_back(1.0 / piv);
  double max_abs = 0.0;
  for (int i = 0; i < m_; ++i) {
    if (i == r) continue;
    const double v = w[static_cast<std::size_t>(i)];
    if (v == 0.0) continue;
    eta_idx_.push_back(i);
    eta_val_.push_back(v);
    const double mag = std::abs(v);
    if (mag > max_abs) max_abs = mag;
  }
  eta_start_.push_back(static_cast<int>(eta_idx_.size()));
  stats_.eta_peak = std::max(stats_.eta_peak, static_cast<int>(eta_row_.size()));
  const bool drift = max_abs > kDriftThreshold * std::abs(piv);
  if (drift) ++stats_.drift_reinversions;
  return drift || pivots_since_refactor_ >= refactor_interval_;
}

}  // namespace prete::lp
