#pragma once

#include "lp/model.h"

namespace prete::lp {

// Standard LP presolve reductions, applied before the simplex:
//  - fixed variables (lower == upper) are substituted into rows,
//  - empty rows are checked for trivial feasibility and dropped,
//  - empty columns (variables in no row) are pinned to their cost-optimal
//    bound,
//  - singleton rows (one variable) are converted into bound tightenings.
// The reductions preserve optimality; `restore` maps a reduced solution
// back to the original variable space.
struct PresolveResult {
  Model reduced;
  // Whether presolve already proved the model infeasible.
  bool infeasible = false;
  // Original variable count (for restore).
  int original_variables = 0;
  // For each original variable: the reduced-model index, or -1 when the
  // variable was eliminated (its fixed value is in `fixed_value`).
  std::vector<int> variable_map;
  std::vector<double> fixed_value;

  // Expands a reduced-model solution to original-model coordinates.
  std::vector<double> restore(const std::vector<double>& reduced_x) const;
};

PresolveResult presolve(const Model& model);

// Convenience: presolve + solve + restore. Status semantics match
// SimplexSolver::solve. Duals are not restored (row mapping is dropped);
// use the raw solver when duals are needed (e.g. Benders subproblems).
Solution solve_with_presolve(const Model& model,
                             const struct SimplexOptions& options);

}  // namespace prete::lp
