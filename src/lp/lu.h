#pragma once

#include <vector>

#include "lp/model.h"
#include "util/arena.h"

namespace prete::lp {

// Markowitz-ordered sparse LU factorization of a basis matrix, the eta
// kernel's anchor for large bases (see lp::BasisState). The explicit-inverse
// anchor costs O(m^2) memory and O(m^3) per reinversion no matter how sparse
// the basis is; on the thousand-row continental masters the basis columns
// carry a handful of nonzeros each, so Gaussian elimination with a
// fill-minimizing pivot order keeps the factors — and with them the
// reinversion and the triangular solves — near the nonzero count instead of
// near m^2.
//
// Pivot selection is the classic Markowitz compromise: at each elimination
// step the candidate columns are the few active columns with the smallest
// column counts, and within them the entry minimizing the Markowitz cost
// (row_count - 1) * (col_count - 1) wins, subject to the threshold
// partial-pivoting stability test |a_ij| >= tau * max|a_:j| on the active
// column. Ties break by larger pivot magnitude, then lower row index, so the
// factorization is a pure function of the input — bit-identical at any
// thread count.
//
// The elimination workspace (active rows with fill-in, column adjacency,
// sparse accumulator) lives in a caller-provided util::Arena, reset per
// factorization: after the high-water mark settles, reinversions stop
// touching the heap entirely. The finished factors are flat CSC-style
// arrays owned by this object and reused across factorizations.
class LuFactorization {
 public:
  struct Stats {
    int nnz_input = 0;    // nonzeros of the factorized basis
    int nnz_factors = 0;  // L + U off-diagonal entries + m pivots
  };

  // Factorizes the m x m basis matrix whose column c is *basis_columns[c]
  // (sparse (row, value) entries, zeros skipped). Returns false when the
  // basis is numerically singular — an active column's magnitude collapses
  // relative to its input scale (the relative test; see BasisState). On
  // failure the factorization is unusable until the next successful call.
  bool factorize(
      const std::vector<const std::vector<Coefficient>*>& basis_columns,
      util::Arena& arena);

  // Trivial factorization of diag(signs) (the all-artificial cold basis).
  void reset_diagonal(int m, const std::vector<double>& signs);

  int dim() const { return m_; }

  // w = B^-1 a for a sparse column a; w is overwritten (resized to m).
  void ftran(const std::vector<Coefficient>& a, std::vector<double>& w) const;

  // x = B^-1 v for a dense column v; x is overwritten (resized to m).
  void ftran_dense(const std::vector<double>& v, std::vector<double>& x) const;

  // y = B^-T v (equivalently y^T = v^T B^-1); y is overwritten.
  void btran(const std::vector<double>& v, std::vector<double>& y) const;

  const Stats& stats() const { return stats_; }

 private:
  // Threshold partial pivoting: a pivot candidate must carry at least this
  // fraction of its active column's largest magnitude. 0.1 is the standard
  // sparse-LU compromise between stability and fill freedom.
  static constexpr double kPivotTol = 0.1;
  // Relative singularity tolerance against the column's input scale.
  static constexpr double kSingularTol = 1e-12;
  // Candidate columns examined per step, in increasing column-count order.
  static constexpr int kSearchColumns = 4;

  int m_ = 0;
  // Step k eliminates row pr_[k] and column pc_[k] with pivot 1/piv_inv_[k].
  std::vector<int> pr_;
  std::vector<int> pc_;
  std::vector<double> piv_inv_;
  // L: per-step multiplier columns, flat (row index, multiplier).
  std::vector<int> l_start_;
  std::vector<int> l_idx_;
  std::vector<double> l_val_;
  // U: per-step off-pivot row entries, flat (column index, value).
  std::vector<int> u_start_;
  std::vector<int> u_idx_;
  std::vector<double> u_val_;

  // Dense scratch for the triangular solves (row space / column space).
  mutable std::vector<double> work_;

  // Factorization-time workspaces, reused across calls (the heavy,
  // fill-dependent row storage itself lives in the caller's arena).
  std::vector<int> row_count_;
  std::vector<int> col_count_;
  std::vector<unsigned char> row_active_;
  std::vector<unsigned char> col_active_;
  std::vector<double> col_scale_;
  std::vector<double> spa_val_;
  std::vector<int> spa_mark_;
  std::vector<int> spa_cols_;

  Stats stats_;
};

}  // namespace prete::lp
