#include "lp/lu.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace prete::lp {

namespace {

// One nonzero of an active row during elimination.
struct RowEntry {
  int col;
  double val;
};

// An active row: an arena-allocated flat array, replaced wholesale when the
// row is updated (the abandoned block is reclaimed at the next arena reset).
struct RowRef {
  RowEntry* data = nullptr;
  int len = 0;
};

}  // namespace

void LuFactorization::reset_diagonal(int m, const std::vector<double>& signs) {
  m_ = m;
  pr_.resize(static_cast<std::size_t>(m));
  pc_.resize(static_cast<std::size_t>(m));
  piv_inv_.resize(static_cast<std::size_t>(m));
  for (int k = 0; k < m; ++k) {
    pr_[static_cast<std::size_t>(k)] = k;
    pc_[static_cast<std::size_t>(k)] = k;
    // signs entries are +-1, their own inverse.
    piv_inv_[static_cast<std::size_t>(k)] = signs[static_cast<std::size_t>(k)];
  }
  l_start_.assign(static_cast<std::size_t>(m) + 1, 0);
  l_idx_.clear();
  l_val_.clear();
  u_start_.assign(static_cast<std::size_t>(m) + 1, 0);
  u_idx_.clear();
  u_val_.clear();
  stats_.nnz_input = m;
  stats_.nnz_factors = m;
}

bool LuFactorization::factorize(
    const std::vector<const std::vector<Coefficient>*>& basis_columns,
    util::Arena& arena) {
  const int m = static_cast<int>(basis_columns.size());
  m_ = m;
  arena.reset();

  pr_.clear();
  pc_.clear();
  piv_inv_.clear();
  pr_.reserve(static_cast<std::size_t>(m));
  pc_.reserve(static_cast<std::size_t>(m));
  piv_inv_.reserve(static_cast<std::size_t>(m));
  l_start_.assign(1, 0);
  l_idx_.clear();
  l_val_.clear();
  u_start_.assign(1, 0);
  u_idx_.clear();
  u_val_.clear();

  // Build the row-major active matrix and the column adjacency from the
  // sparse columns. Column lists only ever grow (fill-in appends); entries
  // of eliminated rows are skipped via row_active_ rather than removed.
  row_count_.assign(static_cast<std::size_t>(m), 0);
  col_count_.assign(static_cast<std::size_t>(m), 0);
  row_active_.assign(static_cast<std::size_t>(m), 1);
  col_active_.assign(static_cast<std::size_t>(m), 1);
  col_scale_.assign(static_cast<std::size_t>(m), 0.0);

  int nnz = 0;
  for (int c = 0; c < m; ++c) {
    for (const Coefficient& entry : *basis_columns[static_cast<std::size_t>(c)]) {
      if (entry.value == 0.0) continue;
      ++row_count_[static_cast<std::size_t>(entry.var)];
      ++nnz;
      const double mag = std::abs(entry.value);
      if (mag > col_scale_[static_cast<std::size_t>(c)]) {
        col_scale_[static_cast<std::size_t>(c)] = mag;
      }
    }
  }
  stats_.nnz_input = nnz;

  RowRef* rows = arena.allocate_array<RowRef>(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    if (row_count_[static_cast<std::size_t>(i)] == 0) return false;  // zero row
    rows[i].data = arena.allocate_array<RowEntry>(
        static_cast<std::size_t>(row_count_[static_cast<std::size_t>(i)]));
    rows[i].len = 0;
  }
  std::vector<util::ArenaVector<int>> col_rows;
  col_rows.reserve(static_cast<std::size_t>(m));
  for (int c = 0; c < m; ++c) {
    if (col_scale_[static_cast<std::size_t>(c)] == 0.0) return false;  // zero col
    col_rows.emplace_back(arena);
  }
  for (int c = 0; c < m; ++c) {
    for (const Coefficient& entry : *basis_columns[static_cast<std::size_t>(c)]) {
      if (entry.value == 0.0) continue;
      RowRef& row = rows[entry.var];
      row.data[row.len++] = {c, entry.value};
      col_rows[static_cast<std::size_t>(c)].push_back(entry.var);
      ++col_count_[static_cast<std::size_t>(c)];
    }
  }

  spa_val_.assign(static_cast<std::size_t>(m), 0.0);
  spa_mark_.assign(static_cast<std::size_t>(m), 0);
  int stamp = 0;

  // Looks up the value of (row i, column c); the row is guaranteed to hold c.
  const auto row_value = [&](int i, int c) -> double {
    const RowRef& row = rows[i];
    for (int p = 0; p < row.len; ++p) {
      if (row.data[p].col == c) return row.data[p].val;
    }
    return 0.0;  // unreachable for consistent adjacency
  };

  int candidates[kSearchColumns];

  for (int k = 0; k < m; ++k) {
    // Candidate columns: the kSearchColumns active columns with the smallest
    // (col_count, index), by insertion sort over one linear scan.
    int num_candidates = 0;
    for (int c = 0; c < m; ++c) {
      if (!col_active_[static_cast<std::size_t>(c)]) continue;
      int pos = num_candidates;
      while (pos > 0 &&
             col_count_[static_cast<std::size_t>(candidates[pos - 1])] >
                 col_count_[static_cast<std::size_t>(c)]) {
        --pos;
      }
      if (pos >= kSearchColumns) continue;
      const int last = std::min(num_candidates, kSearchColumns - 1);
      for (int q = last; q > pos; --q) candidates[q] = candidates[q - 1];
      candidates[pos] = c;
      if (num_candidates < kSearchColumns) ++num_candidates;
    }
    if (num_candidates == 0) return false;

    // Markowitz pick with threshold partial pivoting.
    long long best_cost = std::numeric_limits<long long>::max();
    double best_mag = 0.0;
    int best_row = -1;
    int best_col = -1;
    double best_val = 0.0;
    for (int cand = 0; cand < num_candidates; ++cand) {
      const int c = candidates[cand];
      // Early exit: candidates are count-sorted, and (cc - 1) alone already
      // bounds the achievable cost from below (row counts are >= 1).
      const long long cc =
          static_cast<long long>(col_count_[static_cast<std::size_t>(c)]);
      if (best_row >= 0 && (cc - 1) * 0 >= best_cost) break;
      double colmax = 0.0;
      const util::ArenaVector<int>& adj = col_rows[static_cast<std::size_t>(c)];
      for (std::size_t p = 0; p < adj.size(); ++p) {
        const int i = adj[p];
        if (!row_active_[static_cast<std::size_t>(i)]) continue;
        const double mag = std::abs(row_value(i, c));
        if (mag > colmax) colmax = mag;
      }
      // Relative singularity: the active column's magnitude collapsed
      // against its input scale — elimination cancelled it away.
      if (colmax <= kSingularTol * col_scale_[static_cast<std::size_t>(c)]) {
        return false;
      }
      const double admit = kPivotTol * colmax;
      for (std::size_t p = 0; p < adj.size(); ++p) {
        const int i = adj[p];
        if (!row_active_[static_cast<std::size_t>(i)]) continue;
        const double val = row_value(i, c);
        const double mag = std::abs(val);
        if (mag < admit) continue;  // stability threshold
        const long long cost =
            static_cast<long long>(row_count_[static_cast<std::size_t>(i)] - 1) *
            (cc - 1);
        if (cost < best_cost ||
            (cost == best_cost &&
             (mag > best_mag || (mag == best_mag && i < best_row)))) {
          best_cost = cost;
          best_mag = mag;
          best_row = i;
          best_col = c;
          best_val = val;
        }
      }
    }
    if (best_row < 0) return false;

    const int prow = best_row;
    const int pcol = best_col;
    const double pivot = best_val;
    pr_.push_back(prow);
    pc_.push_back(pcol);
    piv_inv_.push_back(1.0 / pivot);

    // Emit the U row (the pivot row's off-pivot entries) before updates.
    const RowRef pivot_row = rows[prow];
    const int u_begin = static_cast<int>(u_idx_.size());
    for (int p = 0; p < pivot_row.len; ++p) {
      if (pivot_row.data[p].col == pcol) continue;
      u_idx_.push_back(pivot_row.data[p].col);
      u_val_.push_back(pivot_row.data[p].val);
    }
    const int u_end = static_cast<int>(u_idx_.size());
    u_start_.push_back(u_end);

    // Retire the pivot row and column from the active submatrix.
    row_active_[static_cast<std::size_t>(prow)] = 0;
    for (int p = 0; p < pivot_row.len; ++p) {
      --col_count_[static_cast<std::size_t>(pivot_row.data[p].col)];
    }
    col_active_[static_cast<std::size_t>(pcol)] = 0;

    // Eliminate: every remaining row with a nonzero in the pivot column is
    // updated through the sparse accumulator and rewritten as a fresh arena
    // block (fill-in appends in pivot-row order — deterministic).
    const util::ArenaVector<int>& pivot_adj =
        col_rows[static_cast<std::size_t>(pcol)];
    for (std::size_t p = 0; p < pivot_adj.size(); ++p) {
      const int i = pivot_adj[p];
      if (!row_active_[static_cast<std::size_t>(i)]) continue;
      const RowRef old_row = rows[i];
      const double mult = row_value(i, pcol) / pivot;
      l_idx_.push_back(i);
      l_val_.push_back(mult);

      ++stamp;
      spa_cols_.clear();
      for (int q = 0; q < old_row.len; ++q) {
        const int c = old_row.data[q].col;
        if (c == pcol) continue;
        spa_mark_[static_cast<std::size_t>(c)] = stamp;
        spa_val_[static_cast<std::size_t>(c)] = old_row.data[q].val;
        spa_cols_.push_back(c);
      }
      for (int q = u_begin; q < u_end; ++q) {
        const int c = u_idx_[static_cast<std::size_t>(q)];
        const double delta = mult * u_val_[static_cast<std::size_t>(q)];
        if (spa_mark_[static_cast<std::size_t>(c)] == stamp) {
          spa_val_[static_cast<std::size_t>(c)] -= delta;
        } else {
          // Fill-in: numerically-exact zeros are kept, so the pattern (and
          // with it the counts and the pivot sequence) never depends on
          // cancellation.
          spa_mark_[static_cast<std::size_t>(c)] = stamp;
          spa_val_[static_cast<std::size_t>(c)] = -delta;
          spa_cols_.push_back(c);
          col_rows[static_cast<std::size_t>(c)].push_back(i);
          ++col_count_[static_cast<std::size_t>(c)];
        }
      }
      const int new_len = static_cast<int>(spa_cols_.size());
      RowEntry* fresh =
          arena.allocate_array<RowEntry>(static_cast<std::size_t>(new_len));
      for (int q = 0; q < new_len; ++q) {
        const int c = spa_cols_[static_cast<std::size_t>(q)];
        fresh[q] = {c, spa_val_[static_cast<std::size_t>(c)]};
      }
      rows[i] = {fresh, new_len};
      row_count_[static_cast<std::size_t>(i)] = new_len;
    }
    l_start_.push_back(static_cast<int>(l_idx_.size()));
  }

  stats_.nnz_factors =
      static_cast<int>(l_idx_.size() + u_idx_.size()) + m;
  return true;
}

void LuFactorization::ftran(const std::vector<Coefficient>& a,
                            std::vector<double>& w) const {
  work_.assign(static_cast<std::size_t>(m_), 0.0);
  for (const Coefficient& entry : a) {
    work_[static_cast<std::size_t>(entry.var)] = entry.value;
  }
  // Forward pass (L): replay the elimination's row operations on the rhs.
  // Zero pivot-row values skip their scatter, so a sparse rhs stays sparse
  // through the triangular solve.
  const std::size_t steps = pr_.size();
  for (std::size_t k = 0; k < steps; ++k) {
    const double t = work_[static_cast<std::size_t>(pr_[k])];
    if (t == 0.0) continue;
    const int begin = l_start_[k];
    const int end = l_start_[k + 1];
    for (int p = begin; p < end; ++p) {
      work_[static_cast<std::size_t>(l_idx_[static_cast<std::size_t>(p)])] -=
          l_val_[static_cast<std::size_t>(p)] * t;
    }
  }
  // Back substitution (U), in reverse pivot order: every off-pivot column of
  // U row k is a later pivot column, already solved.
  w.assign(static_cast<std::size_t>(m_), 0.0);
  for (std::size_t k = steps; k-- > 0;) {
    double sum = work_[static_cast<std::size_t>(pr_[k])];
    const int begin = u_start_[k];
    const int end = u_start_[k + 1];
    for (int p = begin; p < end; ++p) {
      const double xc = w[static_cast<std::size_t>(u_idx_[static_cast<std::size_t>(p)])];
      if (xc != 0.0) sum -= u_val_[static_cast<std::size_t>(p)] * xc;
    }
    w[static_cast<std::size_t>(pc_[k])] = sum * piv_inv_[k];
  }
}

void LuFactorization::ftran_dense(const std::vector<double>& v,
                                  std::vector<double>& x) const {
  work_ = v;
  const std::size_t steps = pr_.size();
  for (std::size_t k = 0; k < steps; ++k) {
    const double t = work_[static_cast<std::size_t>(pr_[k])];
    if (t == 0.0) continue;
    const int begin = l_start_[k];
    const int end = l_start_[k + 1];
    for (int p = begin; p < end; ++p) {
      work_[static_cast<std::size_t>(l_idx_[static_cast<std::size_t>(p)])] -=
          l_val_[static_cast<std::size_t>(p)] * t;
    }
  }
  x.assign(static_cast<std::size_t>(m_), 0.0);
  for (std::size_t k = steps; k-- > 0;) {
    double sum = work_[static_cast<std::size_t>(pr_[k])];
    const int begin = u_start_[k];
    const int end = u_start_[k + 1];
    for (int p = begin; p < end; ++p) {
      const double xc = x[static_cast<std::size_t>(u_idx_[static_cast<std::size_t>(p)])];
      if (xc != 0.0) sum -= u_val_[static_cast<std::size_t>(p)] * xc;
    }
    x[static_cast<std::size_t>(pc_[k])] = sum * piv_inv_[k];
  }
}

void LuFactorization::btran(const std::vector<double>& v,
                            std::vector<double>& y) const {
  // B^-T = L^-T U^-T. First U^-T, consuming v (indexed by basis column) in
  // pivot order and producing intermediate values in row space; then L^-T in
  // reverse order, replaying the elimination's row operations transposed.
  work_ = v;
  y.assign(static_cast<std::size_t>(m_), 0.0);
  const std::size_t steps = pr_.size();
  for (std::size_t k = 0; k < steps; ++k) {
    const double z = work_[static_cast<std::size_t>(pc_[k])] * piv_inv_[k];
    y[static_cast<std::size_t>(pr_[k])] = z;
    if (z == 0.0) continue;
    const int begin = u_start_[k];
    const int end = u_start_[k + 1];
    for (int p = begin; p < end; ++p) {
      work_[static_cast<std::size_t>(u_idx_[static_cast<std::size_t>(p)])] -=
          u_val_[static_cast<std::size_t>(p)] * z;
    }
  }
  for (std::size_t k = steps; k-- > 0;) {
    double s = y[static_cast<std::size_t>(pr_[k])];
    const int begin = l_start_[k];
    const int end = l_start_[k + 1];
    for (int p = begin; p < end; ++p) {
      s -= l_val_[static_cast<std::size_t>(p)] *
           y[static_cast<std::size_t>(l_idx_[static_cast<std::size_t>(p)])];
    }
    y[static_cast<std::size_t>(pr_[k])] = s;
  }
}

}  // namespace prete::lp
