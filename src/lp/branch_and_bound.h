#pragma once

#include "lp/model.h"
#include "lp/simplex.h"

namespace prete::lp {

struct BranchAndBoundOptions {
  SimplexOptions simplex;
  double integrality_tol = 1e-6;
  // Relative optimality gap at which the search stops.
  double gap_tol = 1e-6;
  int max_nodes = 20000;
  // Nodes popped (best-first) and relaxed per wave. Waves are evaluated in
  // parallel on the runtime pool, then merged in fixed slot order, and the
  // wave size never depends on the worker count — so the node tree, the
  // incumbent sequence, and every returned bit are identical at any
  // PRETE_THREADS. Values <= 1 evaluate serially; a solve with
  // simplex.deadline set is always serial regardless of this setting,
  // because concurrent relaxations would race on the shared deadline's
  // pivot accounting (and wall-clock expiry mid-wave would make the node
  // tree timing-dependent).
  int wave_size = 8;
};

// Best-first branch-and-bound over the model's integer variables, using the
// simplex core for node relaxations. Intended for the small MIPs left after
// Benders decomposition (the master problem over binary scenario selectors)
// and for verifying the decomposition in tests.
//
// Node relaxations are evaluated in deterministic parallel waves (see
// BranchAndBoundOptions::wave_size). The returned Solution aggregates work
// counters across every node relaxation: `iterations` (total simplex
// pivots), `reinversions` / `lu_reinversions` (summed), `eta_peak` (maxed)
// and `nodes_explored`.
//
// When `options.simplex.presolve` is set, the model is run through
// lp::presolve first and the branch-and-bound search operates on the
// reduced model; the returned `x` is lifted back to the original variable
// space and the objective re-evaluated against the original model. Duals
// are not lifted (presolve re-indexes rows) — they come back empty, which
// is safe here because no branch-and-bound caller consumes duals; the
// dual-consuming Benders path calls SimplexSolver directly, where the flag
// is deliberately ignored (see SimplexOptions::presolve).
class BranchAndBound {
 public:
  explicit BranchAndBound(BranchAndBoundOptions options = {})
      : options_(options) {}

  Solution solve(const Model& model) const;

 private:
  Solution solve_direct(const Model& model) const;

  BranchAndBoundOptions options_;
};

}  // namespace prete::lp
