#pragma once

#include "lp/model.h"
#include "lp/simplex.h"

namespace prete::lp {

struct BranchAndBoundOptions {
  SimplexOptions simplex;
  double integrality_tol = 1e-6;
  // Relative optimality gap at which the search stops.
  double gap_tol = 1e-6;
  int max_nodes = 20000;
};

// Best-first branch-and-bound over the model's integer variables, using the
// simplex core for node relaxations. Intended for the small MIPs left after
// Benders decomposition (the master problem over binary scenario selectors)
// and for verifying the decomposition in tests.
class BranchAndBound {
 public:
  explicit BranchAndBound(BranchAndBoundOptions options = {})
      : options_(options) {}

  Solution solve(const Model& model) const;

 private:
  BranchAndBoundOptions options_;
};

}  // namespace prete::lp
