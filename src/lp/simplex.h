#pragma once

#include <cstdint>
#include <vector>

#include "lp/basis.h"
#include "lp/model.h"
#include "util/deadline.h"

namespace prete::lp {

// Entering-variable selection rule for the pivot loop.
//
// kDantzig picks the most negative reduced cost — cheap per iteration but
// iteration counts grow sharply on TWAN-scale masters. kDevex (Forrest &
// Goldfarb reference-framework devex) weighs each reduced cost by an
// approximate steepest-edge norm, trading one extra pivot-row sweep per
// pivot for fewer pivots on the TE formulations; it applies to phase 2
// only (phase 1, whose transient composite objective starts from an
// all-artificial frame, always prices by Dantzig). Both rules are pure
// functions of the model and warm-start hint (ties break toward the lowest
// column index), so solve sequences stay deterministic at any thread count;
// the Bland anti-cycling regime overrides either rule after a degenerate
// streak.
enum class PricingRule : std::uint8_t { kDantzig, kDevex };

struct SimplexOptions {
  // Primal feasibility tolerance on bound/constraint violation.
  double feasibility_tol = 1e-7;
  // Dual feasibility (reduced-cost) tolerance.
  double optimality_tol = 1e-7;
  // 0 means "choose automatically from problem size".
  int max_iterations = 0;
  // Rebuild the basis inverse from scratch every this many pivots to bound
  // numerical drift of the product-form updates. The eta-file kernel also
  // reinverts early when an appended eta column's magnitude spread signals
  // drift (see BasisState::update).
  int refactor_interval = 128;
  // Basis-inverse representation (see lp::BasisKernel). kEtaFile replaces
  // the O(m^2)-per-pivot dense inverse update with an O(nnz) eta append plus
  // periodic dense reinversion; kDenseBinv is the historical kernel, kept as
  // the bit-compatible reference for equivalence tests and the bench gate.
  BasisKernel kernel = BasisKernel::kEtaFile;
  // Basis dimension at or above which the eta kernel's reinversion anchor
  // switches from the explicit dense inverse (O(m^2) memory, O(m^3)
  // rebuild) to the Markowitz-ordered sparse LU factorization whose cost
  // tracks the basis nonzero count (see lp::LuFactorization). The default
  // is set from the lu_anchor phase of bench_runtime_scaling: below a few
  // hundred rows the dense anchor's contiguous sweeps win; by a thousand
  // rows the sparse factors win decisively. Tests pin the anchor with 1
  // (always LU) or INT_MAX (never LU). Ignored by kDenseBinv.
  int lu_threshold = 512;
  // Run lp::presolve ahead of the solve and lift the reduced solution back
  // (see lp::solve_with_presolve). Honored by lp::BranchAndBound root and
  // node relaxations via its own wiring; the raw SimplexSolver ignores it
  // because presolve re-indexes rows, and every raw-solver call site in the
  // Benders stack consumes `duals` positionally against the original row
  // order to build cuts — lifting duals through eliminated rows would need
  // the dropped multipliers that presolve discards. Branch-and-bound never
  // reads duals, so the flag lives safely there.
  bool presolve = false;
  // Candidate-list partial pricing: price a rotating window of this many
  // columns per iteration, advancing the window only when it prices out (no
  // eligible column); optimality is declared only after a full rotation
  // finds nothing, so the optimality conditions are unchanged — only the
  // pivot path moves. 0 sizes the window automatically (total/8, clamped to
  // [64, 512]) but engages it only on column-dominated LPs (total >= 4m)
  // where the pricing scan outweighs the kernel solves; row-dominated
  // problems and problems smaller than the window price fully. Negative
  // forces full pricing. The window position is a pure function of the
  // solve history and ties still break toward the lowest column index, so
  // partial pricing preserves determinism at any thread count. The Bland
  // anti-cycling regime always scans every column.
  int pricing_window = 0;
  // Switch to Bland's anti-cycling rule after this many consecutive
  // degenerate pivots.
  int degenerate_pivot_limit = 200;
  // Entering-variable selection rule (see PricingRule).
  PricingRule pricing = PricingRule::kDevex;
  // Optional cooperative budget, checked (and charged one pivot) at every
  // pivot of both phases. On expiry the solve stops with kIterationLimit;
  // if phase 2 had begun, the returned solution still carries the current
  // primal-feasible point (see SolveStatus::kIterationLimit notes on
  // SimplexSolver::solve). The pointee is mutated by the solve, is not
  // owned, and nullptr (the default) means unlimited — default-constructed
  // solves behave exactly as before.
  util::Deadline* deadline = nullptr;
};

// Snapshot of an optimal basis, reusable as a warm start for a later solve.
// Valid as a hint only when the later model extends the snapshot's model as
// a prefix: the first num_structural() variables and the first num_rows()
// rows (bounds, coefficients, rhs) must be unchanged — appended variables
// and appended rows are fine. Row generation (Benders subproblems, lazy CVaR
// rows) satisfies this by construction. The caller owns that contract; the
// solver only validates internal consistency and falls back to a cold start
// on any mismatch it can detect.
struct SimplexBasis {
  enum class Status : std::uint8_t { kAtLower, kAtUpper, kFreeAtZero, kBasic };
  enum class Kind : std::uint8_t { kStructural, kSlack, kArtificial };
  struct Entry {
    Kind kind = Kind::kArtificial;
    int index = 0;  // structural column j, or the slack's row i
  };

  std::vector<Status> structural_status;  // per structural variable
  std::vector<Status> slack_status;       // per row
  std::vector<Entry> basic;               // basic column of each row
  std::vector<double> basic_value;        // value of that column at the optimum

  int num_structural() const { return static_cast<int>(structural_status.size()); }
  int num_rows() const { return static_cast<int>(slack_status.size()); }
  bool valid() const {
    return !slack_status.empty() &&
           basic.size() == slack_status.size() &&
           basic_value.size() == slack_status.size();
  }

  // Hint for a model that keeps only the first `rows` rows of the snapshot's
  // model (e.g. the shared capacity-row prefix of successive Benders
  // subproblems). Basic columns of dropped rows demote to their nearest
  // bound. When `structurals >= 0`, statuses of structural variables beyond
  // that count are also dropped (for models that append lazy variables —
  // CVaR shortfall columns — on top of a shared allocation prefix); the
  // default keeps every structural status.
  SimplexBasis truncated(int rows, int structurals = -1) const;
};

// Two-phase bounded-variable revised primal simplex. The basis inverse is
// kept either as an explicit dense matrix or (the default) as a product-form
// eta file anchored at periodic dense reinversions — see BasisKernel.
// Designed for the mid-sized LPs produced by the TE formulations (hundreds
// to a few thousand rows once lazy row generation is applied).
//
// The returned duals are shadow prices d(objective)/d(rhs) in the model's
// own sense (for kMaximize they are the derivatives of the maximum).
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  Solution solve(const Model& model) const { return solve(model, nullptr, nullptr); }

  // Warm-startable solve. `warm` (may be null) seeds the starting point and
  // basis from a previous solve under the prefix contract documented on
  // SimplexBasis; `basis_out` (may be null) receives the optimal basis for
  // the next solve in the sequence. Warm starts change only the pivot path,
  // never the optimality conditions, and depend on nothing but the hint —
  // so solve sequences stay deterministic at any thread count.
  //
  // Status contract on kIterationLimit (pivot cap or an expired
  // options.deadline): if the limit fell in phase 2 the solution carries the
  // incumbent — a primal-feasible `x` and its true `objective` — so callers
  // can install it as a best-effort answer; `duals` stay empty because the
  // incumbent basis is not dual-feasible (never build cuts from it). A limit
  // during phase 1 returns an empty `x`: no feasible point was reached.
  Solution solve(const Model& model, const SimplexBasis* warm,
                 SimplexBasis* basis_out) const;

 private:
  SimplexOptions options_;
};

}  // namespace prete::lp
