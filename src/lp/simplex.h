#pragma once

#include "lp/model.h"

namespace prete::lp {

struct SimplexOptions {
  // Primal feasibility tolerance on bound/constraint violation.
  double feasibility_tol = 1e-7;
  // Dual feasibility (reduced-cost) tolerance.
  double optimality_tol = 1e-7;
  // 0 means "choose automatically from problem size".
  int max_iterations = 0;
  // Rebuild the basis inverse from scratch every this many pivots to bound
  // numerical drift of the product-form updates.
  int refactor_interval = 128;
  // Switch to Bland's anti-cycling rule after this many consecutive
  // degenerate pivots.
  int degenerate_pivot_limit = 200;
};

// Two-phase bounded-variable revised primal simplex with a dense basis
// inverse. Designed for the mid-sized LPs produced by the TE formulations
// (hundreds to a few thousand rows once lazy row generation is applied).
//
// The returned duals are shadow prices d(objective)/d(rhs) in the model's
// own sense (for kMaximize they are the derivatives of the maximum).
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  Solution solve(const Model& model) const;

 private:
  SimplexOptions options_;
};

}  // namespace prete::lp
