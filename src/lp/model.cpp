#include "lp/model.h"

#include <cmath>
#include <stdexcept>

namespace prete::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

int Model::add_variable(double lower, double upper, double objective,
                        std::string name) {
  if (lower > upper) throw std::invalid_argument("variable bounds crossed");
  variables_.push_back({lower, upper, objective, false, std::move(name)});
  return num_variables() - 1;
}

int Model::add_binary(double objective, std::string name) {
  variables_.push_back({0.0, 1.0, objective, true, std::move(name)});
  return num_variables() - 1;
}

int Model::add_integer(double lower, double upper, double objective,
                       std::string name) {
  if (lower > upper) throw std::invalid_argument("variable bounds crossed");
  variables_.push_back({lower, upper, objective, true, std::move(name)});
  return num_variables() - 1;
}

int Model::add_row(Row row) {
  for (const auto& coef : row.coefficients) {
    if (coef.var < 0 || coef.var >= num_variables()) {
      throw std::out_of_range("row references unknown variable");
    }
  }
  rows_.push_back(std::move(row));
  return num_rows() - 1;
}

int Model::add_row(std::vector<Coefficient> coefficients, RowType type,
                   double rhs, std::string name) {
  return add_row(Row{std::move(coefficients), type, rhs, std::move(name)});
}

void Model::set_objective(int var, double coefficient) {
  variables_.at(static_cast<std::size_t>(var)).objective = coefficient;
}

void Model::set_bounds(int var, double lower, double upper) {
  if (lower > upper) throw std::invalid_argument("variable bounds crossed");
  auto& v = variables_.at(static_cast<std::size_t>(var));
  v.lower = lower;
  v.upper = upper;
}

bool Model::has_integers() const {
  for (const auto& v : variables_) {
    if (v.is_integer) return true;
  }
  return false;
}

double Model::objective_value(const std::vector<double>& x) const {
  double total = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    total += variables_[i].objective * x[i];
  }
  return total;
}

double Model::max_violation(const std::vector<double>& x) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    worst = std::max(worst, variables_[i].lower - x[i]);
    worst = std::max(worst, x[i] - variables_[i].upper);
  }
  for (const auto& row : rows_) {
    double lhs = 0.0;
    for (const auto& coef : row.coefficients) {
      lhs += coef.value * x[static_cast<std::size_t>(coef.var)];
    }
    switch (row.type) {
      case RowType::kLessEqual:
        worst = std::max(worst, lhs - row.rhs);
        break;
      case RowType::kGreaterEqual:
        worst = std::max(worst, row.rhs - lhs);
        break;
      case RowType::kEqual:
        worst = std::max(worst, std::abs(lhs - row.rhs));
        break;
    }
  }
  return worst;
}

}  // namespace prete::lp
