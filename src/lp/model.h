#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace prete::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kMinimize, kMaximize };

enum class RowType { kLessEqual, kGreaterEqual, kEqual };

// One nonzero coefficient in a sparse row.
struct Coefficient {
  int var;
  double value;
};

// A linear constraint in sparse form.
struct Row {
  std::vector<Coefficient> coefficients;
  RowType type = RowType::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

// Decision variable with simple bounds.
struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  bool is_integer = false;
  std::string name;
};

// Sparse linear (or mixed-integer) program builder. The model is the shared
// vocabulary between the simplex core, the branch-and-bound wrapper, and the
// TE formulations.
class Model {
 public:
  explicit Model(Sense sense = Sense::kMinimize) : sense_(sense) {}

  int add_variable(double lower, double upper, double objective,
                   std::string name = {});
  int add_binary(double objective, std::string name = {});
  int add_integer(double lower, double upper, double objective,
                  std::string name = {});

  int add_row(Row row);
  int add_row(std::vector<Coefficient> coefficients, RowType type, double rhs,
              std::string name = {});

  void set_objective(int var, double coefficient);
  void set_bounds(int var, double lower, double upper);
  void set_sense(Sense sense) { sense_ = sense; }

  Sense sense() const { return sense_; }
  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  const Variable& variable(int i) const { return variables_[static_cast<std::size_t>(i)]; }
  const Row& row(int i) const { return rows_[static_cast<std::size_t>(i)]; }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Row>& rows() const { return rows_; }

  bool has_integers() const;

  // Evaluates the objective for a candidate assignment.
  double objective_value(const std::vector<double>& x) const;

  // Maximum constraint / bound violation of a candidate assignment; used by
  // tests to certify solver output independently of the solver itself.
  double max_violation(const std::vector<double>& x) const;

 private:
  Sense sense_;
  std::vector<Variable> variables_;
  std::vector<Row> rows_;
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* to_string(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;
  // Dual value per row: the shadow price d(objective)/d(rhs) for the
  // minimization form of the model. Required by Benders decomposition.
  std::vector<double> duals;
  // Simplex pivots spent. For a branch-and-bound solve this is the total
  // across every node relaxation, not just the incumbent's.
  int iterations = 0;
  // Kernel work counters: anchor reinversions performed and the longest
  // eta file reached between them (0 under the dense kernel). For
  // branch-and-bound, summed / maxed across node relaxations.
  int reinversions = 0;
  int eta_peak = 0;
  // Reinversions that built a sparse LU anchor (eta kernel at or above
  // SimplexOptions::lu_threshold rows) — lets tests and the bench assert
  // the LU anchor actually engaged. Summed across branch-and-bound nodes.
  int lu_reinversions = 0;
  // Branch-and-bound nodes popped from the best-first queue (0 for pure LP
  // solves).
  int nodes_explored = 0;
};

}  // namespace prete::lp
