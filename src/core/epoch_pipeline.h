#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/controller.h"
#include "runtime/task_group.h"
#include "runtime/thread_pool.h"

namespace prete::core {

// One telemetry epoch handed to the pipeline: the raw window plus the
// demands the resulting decision should be solved against.
struct EpochInput {
  net::FiberId fiber = 0;
  std::vector<double> trace_db;
  optical::TimeSec trace_start_sec = 0;
  double healthy_loss_db = 0.0;
  net::TrafficMatrix demands;
  // Chaos seam: a stalled telemetry stage. The prepare stage sleeps this
  // long before sanitizing, which the wall-mode watchdog should catch.
  // Zero (the default) in every deterministic run.
  double stall_prepare_ms = 0.0;
};

// Terminal state of one epoch after the pipeline has committed it.
enum class EpochStatus {
  kDecided = 0,     // decide_prepared ran; `decision` is valid
  kNoSignal,        // window sanitized clean, no degradation found
  kMalformed,       // rejected by the input guards (bad fiber/trace/metadata)
  kDuplicate,       // exact re-delivery of the previous window; deduplicated
  kQuarantined,     // failed sanitization twice (or structurally); dropped
  kStageFault,      // a stage threw even after containment; no decision
};

const char* epoch_status_name(EpochStatus status);

// Per-epoch outcome, returned by drain() in epoch order.
struct EpochResult {
  std::size_t epoch = 0;
  EpochStatus status = EpochStatus::kNoSignal;
  // Mirrors ControlDecision::superseded: the solve was cancelled by a
  // fresher epoch and the incumbent harvested through the ladder.
  bool superseded = false;
  int ingest_attempts = 1;
  optical::RetryHint retry_hint = optical::RetryHint::kNone;
  optical::TelemetryQuality quality;
  std::optional<ControlDecision> decision;
};

// Aggregate pipeline health counters (monotone; read after drain()).
struct EpochPipelineStats {
  std::size_t submitted = 0;
  std::size_t decided = 0;
  std::size_t no_signal = 0;
  std::size_t malformed = 0;
  std::size_t duplicates = 0;
  std::size_t quarantined = 0;
  std::size_t stage_faults = 0;   // prepare/commit stages that threw
  std::size_t ingest_retries = 0;
  std::size_t watchdog_trips = 0;
  std::size_t cancel_requests = 0;  // supersede cancellations issued
  std::size_t superseded = 0;       // decisions harvested from a cancelled solve
  std::size_t max_in_flight_seen = 0;
};

struct EpochPipelineConfig {
  // Bounded admission: submit() blocks once this many epochs are in flight
  // (submitted but not yet committed). Must be >= 1. Depth 1 degenerates to
  // fully serial execution; the decision sequence is identical either way.
  int max_in_flight = 4;
  // When true, an epoch whose preparation finds a degradation signal
  // requests cancellation of the older solve still committing
  // (util::Deadline::request_cancel): the stale solve's incumbent is
  // harvested through the ladder and marked superseded. Cancellation is
  // wall-clock-timing-dependent, so this must stay false in any run whose
  // decision digest is asserted.
  bool cancel_superseded = false;
  // Ingest retry: how many total sanitization attempts a failing window
  // gets. Retries happen only when a fetch_window callback is installed and
  // the failure is transient (optical::RetryHint::kTransient); a window
  // still failing after the last attempt — or failing structurally on the
  // first — is quarantined. With no callback the pipeline falls through to
  // the serial on_telemetry semantics instead (untrusted-but-degraded
  // windows still decide on the static probability).
  int max_ingest_attempts = 2;
  // Exponential backoff between ingest retries: attempt k sleeps
  // retry_backoff_ms * 2^(k-1). Wall-clock behavior — keep 0 (no sleep) in
  // deterministic runs; retries themselves stay deterministic either way.
  double retry_backoff_ms = 0.0;
  // Per-stage watchdog: a prepare stage whose wall time exceeds this budget
  // counts a watchdog trip and is treated as a transient ingest fault
  // (retried under the same rules as a failed sanitization). 0 disables —
  // the deterministic default, since wall time is not reproducible.
  double stage_watchdog_ms = 0.0;
};

// Supervised, overlapped epoch pipeline over one core::Controller.
//
// Epoch t+1's ingest/sanitize/detect/predict/scenario-regeneration
// (Controller::prepare_telemetry — const, side-effect-free) runs on the
// thread pool while epoch t's solve (Controller::decide_prepared) is still
// running. Commits are strictly serialized in epoch order on whichever
// worker finished a prepare and won the commit race, so the controller's
// mutable state (tunnel table, warm-start caches, last-good ladder) sees
// exactly the serial call sequence: the ControlDecision stream — and any
// digest over it — is bit-identical to calling on_telemetry in a loop,
// at any pool size and any admission depth.
//
// Fault isolation: a throwing prepare degrades that epoch to a
// static-probability scenario (the controller's ladder then contains any
// repeat throw); a throwing commit records kStageFault for that epoch. In
// both cases the pipeline keeps running and later epochs are unaffected.
//
// Cancellation (cancel_superseded): each commit solves against a per-epoch
// util::Deadline the pipeline owns; when a fresher epoch's prepare lands
// with a signal, it request_cancel()s the older deadline. The stale solve
// returns its best incumbent, descends the ladder as needed, and is marked
// superseded — a superseded decision never refreshes the controller's
// last-good snapshot.
class EpochPipeline {
 public:
  // Re-fetches a window for a retry: (epoch, attempt) -> replacement trace.
  // attempt is 1-based (the original submission was attempt 0's trace).
  using FetchWindow =
      std::function<std::vector<double>(std::size_t epoch, int attempt)>;
  // Serial hooks, run on the commit thread in strict epoch order.
  using BeforeSolve = std::function<void(std::size_t epoch)>;
  using AfterCommit =
      std::function<void(std::size_t epoch, const EpochResult& result)>;

  explicit EpochPipeline(Controller& controller,
                         EpochPipelineConfig config = {},
                         runtime::ThreadPool& pool =
                             runtime::ThreadPool::global());
  // Drains outstanding epochs (results are discarded; call drain() to
  // observe them).
  ~EpochPipeline();

  EpochPipeline(const EpochPipeline&) = delete;
  EpochPipeline& operator=(const EpochPipeline&) = delete;

  // Admits one epoch, blocking while max_in_flight epochs are outstanding
  // (the caller thread helps execute pool work while it waits, so a
  // single-worker pool cannot deadlock the submitter). Returns the epoch
  // index. Must be called from one thread; epochs commit in submit order.
  std::size_t submit(EpochInput input);

  // Blocks until every submitted epoch has committed, then returns all
  // results accumulated since the last drain(), in epoch order.
  std::vector<EpochResult> drain();

  // Install the retry fetch callback / serial hooks. Not thread-safe
  // against in-flight epochs: set them before the first submit.
  void set_fetch_window(FetchWindow fetch) { fetch_ = std::move(fetch); }
  void set_before_solve(BeforeSolve hook) { before_solve_ = std::move(hook); }
  void set_after_commit(AfterCommit hook) { after_commit_ = std::move(hook); }

  EpochPipelineStats stats() const;
  const EpochPipelineConfig& config() const { return config_; }

  // The epoch whose prepare or commit stage is executing on the calling
  // thread, or -1 outside any stage. This is the seam epoch-scoped chaos
  // injections hook into (e.g. a predictor whose fault schedule is a pure
  // function of the epoch): a prepare stage runs wholly on one thread, so
  // thread-local scoping identifies the epoch without racing the overlap.
  static std::int64_t current_epoch();

 private:
  struct Slot {
    EpochInput input;
    PreparedEpoch prepared;
    EpochResult result;
    // The external deadline threaded through this epoch's solve; a
    // superseding epoch cancels it. Owned here so its address is stable
    // while another thread pokes it.
    util::Deadline deadline = util::Deadline::unlimited();
    bool ready = false;  // prepare finished; eligible to commit
  };

  void run_prepare(std::size_t epoch);
  // Commits every ready epoch starting at next_commit_; returns when the
  // next epoch in order is not ready (or another thread is committing).
  void commit_ready();
  void commit_one(std::size_t epoch, Slot& slot);
  // True when `quality` fails sanitization (unusable or untrusted window).
  static bool sanitization_failed(const optical::TelemetryQuality& quality);

  Controller& controller_;
  EpochPipelineConfig config_;
  runtime::ThreadPool& pool_;
  runtime::TaskGroup group_;
  FetchWindow fetch_;
  BeforeSolve before_solve_;
  AfterCommit after_commit_;

  mutable std::mutex mutex_;
  std::condition_variable admit_cv_;
  std::condition_variable drain_cv_;
  std::map<std::size_t, std::unique_ptr<Slot>> slots_;
  std::vector<EpochResult> results_;
  EpochPipelineStats stats_;
  std::size_t next_epoch_ = 0;   // next index submit() hands out
  std::size_t next_commit_ = 0;  // next epoch eligible to commit
  std::size_t in_flight_ = 0;    // submitted but not committed
  bool committing_ = false;      // a thread is inside commit_one
  // While committing_: the epoch being committed and its deadline, so a
  // superseding prepare can cancel it. Guarded by mutex_.
  std::size_t committing_epoch_ = 0;
  util::Deadline* committing_deadline_ = nullptr;
  // Dedup of exact re-deliveries: identity of the last admitted window.
  bool have_last_window_ = false;
  net::FiberId last_window_fiber_ = 0;
  optical::TimeSec last_window_t0_ = 0;
};

}  // namespace prete::core
