#pragma once

#include <cstddef>
#include <string>

#include "te/types.h"

namespace prete::core {

// Verdict of validate_policy: why (if at all) a candidate policy is unsafe
// to install. `valid` is the conjunction of every individual check.
struct PolicyCheck {
  bool valid = true;
  bool size_mismatch = false;  // allocation vector != tunnel-table size
  std::size_t non_finite = 0;  // NaN/inf allocation entries
  std::size_t negative = 0;    // entries below -tol
  int overloaded_links = 0;    // link load exceeds its capacity

  // One-line human-readable verdict for logs and bench reports.
  std::string summary() const;
};

// Pre-install validation gate for the controller's degradation ladder: every
// policy — from the full Benders solve down to the static floor — must pass
// before it is installed on the network. Checks, against the CURRENT problem
// (network, flows, tunnel table, demands):
//   1. the allocation vector covers exactly the tunnel table,
//   2. every entry is finite and non-negative (within `tol`),
//   3. no link is loaded past its capacity (within `tol`, relative).
// A flow's total allocation exceeding its demand is deliberately NOT an
// error: the min-max program over-provisions surviving tunnels as
// protection headroom (rate adaptation sends at most the demand), so only
// physical capacity bounds what is installable.
// The function never throws; a malformed policy yields a failing verdict.
PolicyCheck validate_policy(const te::TeProblem& problem,
                            const te::TePolicy& policy, double tol = 1e-6);

}  // namespace prete::core
