#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "ml/oracle.h"
#include "ml/predictor.h"
#include "net/topology.h"
#include "net/traffic.h"
#include "optical/detector.h"
#include "optical/sanitize.h"
#include "sim/latency.h"
#include "te/availability.h"
#include "te/prete.h"
#include "util/deadline.h"

namespace prete::core {

// Configuration of a PreTE deployment.
struct ControllerConfig {
  te::PreTeConfig te;
  sim::LatencyModel latency;
  // How long a dynamic tunnel is kept after a degradation clears (one TE
  // period by default, §4.2).
  double dynamic_tunnel_ttl_sec = 300.0;
  // Per-decision solve budget (see util::Deadline): maximum simplex pivots
  // and wall-clock milliseconds the TE solve may spend before the controller
  // degrades to a fallback policy. 0 disables the respective limit; both 0
  // (the default) leaves decisions bitwise identical to an unbudgeted build.
  // The pivot budget is deterministic; the wall-clock budget is not and
  // should stay off in reproducibility-sensitive runs.
  std::int64_t solver_pivot_budget = 0;
  double solver_wall_ms = 0.0;
  // Learned warm-start oracle (ml::WarmStartOracle): when enabled the
  // controller harvests converged solver traces each decision, trains the
  // oracle incrementally after the decision is assembled (off the solve
  // path), and passes its predictions into the Benders solve as
  // verified-on-arrival hints. A hint can only reduce pivots — converged
  // objectives are bitwise-unaffected by construction (see
  // te::MinMaxOptions::warm_hint) — so the knob defaults off purely to keep
  // the default controller allocation-free of oracle state.
  bool learned_warm_start = false;
  ml::OracleConfig oracle;
};

// Which rung of the controller's graceful-degradation ladder produced a
// decision. Ordered from best to worst; every rung's policy passes
// validate_policy before installation.
enum class FallbackLevel {
  kFull = 0,         // Benders solve ran to completion
  kIncumbent = 1,    // deadline expired; solver's best incumbent installed
  kLastGood = 2,     // last validated policy re-projected onto current tunnels
  kStaticFloor = 3,  // capacity-safe equal split (no solver involved)
};

// The outcome of one control decision: the policy to install, the pipeline
// timing that producing it would take on the testbed, and bookkeeping about
// the tunnels created.
struct ControlDecision {
  te::TePolicy policy;
  te::ScenarioSet believed_scenarios;
  sim::PipelineTrace pipeline;
  int new_tunnels = 0;
  double phi = 0.0;  // guaranteed beta-quantile loss (1.0 on fallback rungs)
  // Simplex pivots spent producing this decision — drops on epochs that
  // reuse a carried basis (see te::BasisCache).
  int solver_pivots = 0;
  // Benders iterations the solve took (0 when the solve threw before
  // returning). Steady-state epochs with a warm cut bank converge in fewer
  // iterations than cold ones.
  int benders_iterations = 0;
  // Cut-bank provenance of the solve behind this decision (see te::CutBank):
  // persisted cuts replayed onto the master, stored cuts dropped by the
  // validity check, and fresh cuts banked for the next epoch. All zero when
  // the solve threw — on the ladder's lower rungs the counters still
  // describe the attempted solve, whose bank writeback already happened.
  int cuts_replayed = 0;
  int cuts_invalidated = 0;
  int cuts_banked = 0;
  // Warm-hint provenance of the solve (see te::MinMaxResult): whether a
  // learned hint was applied, rejected (verification failure or mid-solve
  // discard), and how many pivots an applied hint saved against the
  // oracle's expected-cold estimate. All zero when the oracle is disabled,
  // abstained, or the solve threw.
  int hint_accepted = 0;
  int hint_rejected = 0;
  int hint_pivots_saved = 0;
  // Degradation-ladder bookkeeping: which rung produced `policy`, whether
  // the solve deadline expired on the way, and the Benders bound gap of the
  // installed policy (0 at proven optimality, 1.0 on the ladder's lower
  // rungs where no bound exists).
  FallbackLevel fallback_level = FallbackLevel::kFull;
  bool deadline_exceeded = false;
  double gap = 0.0;
  // True when the solve behind this decision was cancelled by a superseding
  // epoch (util::Deadline::request_cancel). The harvested incumbent is
  // still installed through the ladder, but a superseded decision never
  // refreshes the last-good snapshot: the canceller is about to install a
  // fresher policy, and a half-finished solve must not become the state the
  // controller falls back to.
  bool superseded = false;
};

// The side-effect-free front half of a telemetry epoch (input guards,
// sanitization, degradation detection, failure prediction, scenario
// regeneration), produced by Controller::prepare_telemetry and consumed by
// Controller::decide_prepared. The epoch pipeline prepares epoch t+1 on the
// thread pool while epoch t's solve is still running.
struct PreparedEpoch {
  // Window rejected by the input guards (unknown fiber, empty/oversized
  // trace, negative start, bad healthy loss): nothing else is filled in.
  bool malformed = false;
  // A degradation was found; `scenario` and `prepared` are valid.
  bool has_signal = false;
  optical::TelemetryQuality quality;
  te::DegradationScenario scenario;
  // Scenario regeneration done ahead of the solve (see
  // te::PreTeScheme::prepare_scenarios).
  std::optional<te::PreTeScheme::Prepared> prepared;
};

// The PreTE controller (Figure 8): consumes per-second optical telemetry,
// detects degradations, queries the failure predictor, reactively creates
// tunnels, and solves the availability-constrained TE program.
//
// The controller owns a mutable tunnel table seeded from the topology; each
// degradation may append dynamic tunnels, and `on_degradation_cleared`
// restores the original state.
//
// Fault tolerance: every decision descends a graceful-degradation ladder
// (FallbackLevel) until a rung produces a policy that passes
// validate_policy. A solver exception, an expired deadline with no usable
// incumbent, or a validator rejection moves to the next rung; the static
// floor always succeeds, so a decision is always produced and is always
// safe to install.
class Controller {
 public:
  Controller(const net::Topology& topology,
             std::vector<double> static_fiber_probs,
             std::shared_ptr<const ml::FailurePredictor> predictor,
             ControllerConfig config = {});

  // Periodic TE run (every TE period, no degradation signal).
  ControlDecision on_te_period(const net::TrafficMatrix& demands);

  // Telemetry-triggered run: a trace window for one fiber is scanned; if a
  // degradation is found, the full reactive pipeline executes. Returns
  // nullopt when the trace shows no degradation — or when the window is
  // malformed (unknown fiber, empty/oversized trace, negative start time,
  // non-positive or non-finite healthy loss) or carried no usable signal;
  // consult last_telemetry_quality() to distinguish. The raw trace is
  // sanitized (optical::sanitize_trace) before detection; a window that is
  // degraded but untrusted (mostly-missing, stuck-at) still triggers the
  // pipeline, using the fiber's static probability instead of the ML
  // predictor whose features the garbage window would have fed.
  std::optional<ControlDecision> on_telemetry(
      net::FiberId fiber, const std::vector<double>& trace_db,
      optical::TimeSec trace_start_sec, double healthy_loss_db,
      const net::TrafficMatrix& demands);

  // Degradation event already extracted (e.g. by an external telemetry
  // system): run prediction + tunnel updates + optimization.
  ControlDecision on_degradation(const optical::DegradationFeatures& features,
                                 const net::TrafficMatrix& demands);

  // The telemetry front half of on_telemetry, with no controller-state side
  // effects: input guards, sanitization, detection, prediction, and
  // scenario regeneration. Const and safe to call concurrently with a
  // running decide_prepared — this is how the epoch pipeline overlaps epoch
  // t+1's ingest with epoch t's solve. The failure predictor must be
  // thread-safe for concurrent preparation; every predictor in this repo is
  // a pure const function of the features.
  PreparedEpoch prepare_telemetry(net::FiberId fiber,
                                  const std::vector<double>& trace_db,
                                  optical::TimeSec trace_start_sec,
                                  double healthy_loss_db) const;

  // The stateful back half: tunnel updates, the (budgeted) solve, the
  // degradation ladder, and last-good bookkeeping. on_telemetry is exactly
  // prepare_telemetry + decide_prepared, so pipelined and serial execution
  // produce bit-identical decision sequences.
  //
  // `external`, when non-null, is the deadline threaded through the solve
  // in place of an internal one (the configured budgets are armed on it
  // first): another thread may request_cancel() it to abandon the solve
  // mid-flight, harvesting the best incumbent through the ladder. A
  // cancelled solve's decision is marked `superseded` and never refreshes
  // the last-good snapshot.
  ControlDecision decide_prepared(const PreparedEpoch& prepared,
                                  const net::TrafficMatrix& demands,
                                  util::Deadline* external = nullptr);

  // The degradation cleared without a cut (or the cut was repaired):
  // dynamic tunnels are dismantled (§4.2).
  void on_degradation_cleared();

  // Replaces the solve budget for subsequent decisions. Exists so fault
  // campaigns and operators can tighten or lift the budget without
  // rebuilding the controller. Semantics of the two knobs:
  //  - pivot_budget = 0 disables the pivot budget; wall_ms = 0 disables the
  //    wall clock. Both 0 means unlimited solves.
  //  - wall_ms = 0 with pivot_budget > 0 is the pivot-budget-only mode:
  //    solves are cut after exactly `pivot_budget` simplex pivots, which is
  //    a pure function of the work done — decisions stay bit-identical
  //    across runs and thread counts. This is the mode reproducibility-
  //    sensitive deployments (and every deterministic test) should use.
  //  - wall_ms > 0 arms a real-time bound as well; expiry then depends on
  //    machine load, so decisions are no longer reproducible run-to-run.
  // Negative pivot_budget, or negative/NaN wall_ms, is a contract violation
  // and throws std::invalid_argument without touching the current budget.
  void set_solver_budget(std::int64_t pivot_budget, double wall_ms = 0.0);

  // Chaos-engineering seam: the next `n` solve attempts throw from inside
  // the solve stage (before the scheme runs), exercising the ladder's
  // exception containment exactly as a crashing solver would. Used by the
  // fault campaign's solver-exception injection; never armed in production.
  void arm_solver_exception(int n) { armed_solver_faults_ = n; }

  const net::TunnelSet& tunnels() const { return tunnels_; }
  const ControllerConfig& config() const { return config_; }
  const std::vector<double>& static_probs() const { return static_probs_; }
  // The long-lived TE scheme — exposes basis-cache statistics so callers
  // can observe cross-epoch warm-start behavior.
  const te::PreTeScheme& scheme() const { return scheme_; }
  // Quality verdict of the most recent on_telemetry window (default-
  // constructed before the first call).
  const optical::TelemetryQuality& last_telemetry_quality() const {
    return last_telemetry_quality_;
  }
  // The learned warm-start oracle's counters (all zero when
  // ControllerConfig::learned_warm_start is off).
  ml::WarmStartOracle::Stats oracle_stats() const {
    return oracle_ ? oracle_->stats() : ml::WarmStartOracle::Stats{};
  }

 private:
  ControlDecision run_pipeline(const te::DegradationScenario& scenario,
                               const net::TrafficMatrix& demands,
                               bool include_detection,
                               const te::PreTeScheme::Prepared* prepared =
                                   nullptr,
                               util::Deadline* external = nullptr);
  // Builds the degradation scenario for one detected event, querying the
  // failure predictor (with the static-probability fallback on a throwing
  // predictor). Const: shared by on_degradation and prepare_telemetry.
  te::DegradationScenario scenario_for_features(
      const optical::DegradationFeatures& features) const;
  // Rung 2: the last validated policy, truncated to the static tunnel
  // prefix, re-sized to the current tunnel table. Nullopt when no decision
  // has been validated yet or the re-projection fails validation.
  std::optional<te::TePolicy> last_good_projection() const;
  // Rung 3: per-flow equal split over the static tunnels, scaled down by
  // the worst link-overload ratio — capacity-safe by construction.
  te::TePolicy static_floor(const net::TrafficMatrix& demands) const;
  te::TeProblem current_problem(const net::TrafficMatrix& demands) const;

  const net::Topology& topology_;
  std::vector<double> static_probs_;
  std::shared_ptr<const ml::FailurePredictor> predictor_;
  ControllerConfig config_;
  net::TunnelSet tunnels_;
  // Persists across on_te_period / on_degradation calls so its per-shape
  // basis caches carry simplex warm starts — and its per-shape cut banks
  // carry Benders optimality cuts — from epoch to epoch. A topology or
  // tunnel-set change alters the problem-shape signature, which invalidates
  // the affected entry (cold solve, identical result). Degradation-ladder
  // interaction: a deadline-starved solve (kIncumbent rung) still banks the
  // cuts its completed subproblems derived — they are exact inequalities
  // regardless of convergence — so even a string of degraded epochs keeps
  // warming the next full solve; only a solve that throws banks nothing.
  te::PreTeScheme scheme_;
  // Ladder state. The last-good policy is stored truncated to the static
  // tunnel prefix: dynamic tunnel ids are reused across
  // on_degradation_cleared, so allocations beyond the prefix would silently
  // land on different tunnels than they were computed for.
  // Learned warm-start state (engaged only when the config enables it).
  // Owned here — not by the scheme — because harvesting needs the
  // controller's view of the epoch (effective fiber probabilities, the
  // post-update tunnel table) and training must run off the solve path.
  std::optional<ml::WarmStartOracle> oracle_;
  int num_static_tunnels_ = 0;
  std::optional<te::TePolicy> last_good_;
  optical::TelemetryQuality last_telemetry_quality_;
  // Armed solver-exception count (see arm_solver_exception).
  int armed_solver_faults_ = 0;
};

}  // namespace prete::core
