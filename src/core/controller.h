#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "ml/predictor.h"
#include "net/topology.h"
#include "net/traffic.h"
#include "optical/detector.h"
#include "sim/latency.h"
#include "te/availability.h"
#include "te/prete.h"

namespace prete::core {

// Configuration of a PreTE deployment.
struct ControllerConfig {
  te::PreTeConfig te;
  sim::LatencyModel latency;
  // How long a dynamic tunnel is kept after a degradation clears (one TE
  // period by default, §4.2).
  double dynamic_tunnel_ttl_sec = 300.0;
};

// The outcome of one control decision: the policy to install, the pipeline
// timing that producing it would take on the testbed, and bookkeeping about
// the tunnels created.
struct ControlDecision {
  te::TePolicy policy;
  te::ScenarioSet believed_scenarios;
  sim::PipelineTrace pipeline;
  int new_tunnels = 0;
  double phi = 0.0;  // guaranteed beta-quantile loss
  // Simplex pivots spent producing this decision — drops on epochs that
  // reuse a carried basis (see te::BasisCache).
  int solver_pivots = 0;
};

// The PreTE controller (Figure 8): consumes per-second optical telemetry,
// detects degradations, queries the failure predictor, reactively creates
// tunnels, and solves the availability-constrained TE program.
//
// The controller owns a mutable tunnel table seeded from the topology; each
// degradation may append dynamic tunnels, and `on_degradation_cleared`
// restores the original state.
class Controller {
 public:
  Controller(const net::Topology& topology,
             std::vector<double> static_fiber_probs,
             std::shared_ptr<const ml::FailurePredictor> predictor,
             ControllerConfig config = {});

  // Periodic TE run (every TE period, no degradation signal).
  ControlDecision on_te_period(const net::TrafficMatrix& demands);

  // Telemetry-triggered run: a trace window for one fiber is scanned; if a
  // degradation is found, the full reactive pipeline executes. Returns
  // nullopt when the trace shows no degradation.
  std::optional<ControlDecision> on_telemetry(
      net::FiberId fiber, const std::vector<double>& trace_db,
      optical::TimeSec trace_start_sec, double healthy_loss_db,
      const net::TrafficMatrix& demands);

  // Degradation event already extracted (e.g. by an external telemetry
  // system): run prediction + tunnel updates + optimization.
  ControlDecision on_degradation(const optical::DegradationFeatures& features,
                                 const net::TrafficMatrix& demands);

  // The degradation cleared without a cut (or the cut was repaired):
  // dynamic tunnels are dismantled (§4.2).
  void on_degradation_cleared();

  const net::TunnelSet& tunnels() const { return tunnels_; }
  const ControllerConfig& config() const { return config_; }
  const std::vector<double>& static_probs() const { return static_probs_; }
  // The long-lived TE scheme — exposes basis-cache statistics so callers
  // can observe cross-epoch warm-start behavior.
  const te::PreTeScheme& scheme() const { return scheme_; }

 private:
  ControlDecision run_pipeline(const te::DegradationScenario& scenario,
                               const net::TrafficMatrix& demands,
                               bool include_detection);

  const net::Topology& topology_;
  std::vector<double> static_probs_;
  std::shared_ptr<const ml::FailurePredictor> predictor_;
  ControllerConfig config_;
  net::TunnelSet tunnels_;
  // Persists across on_te_period / on_degradation calls so its per-shape
  // basis caches carry simplex warm starts from epoch to epoch. A topology
  // or tunnel-set change alters the problem-shape signature, which
  // invalidates the affected cache entry (cold solve, identical result).
  te::PreTeScheme scheme_;
};

}  // namespace prete::core
