#include "core/policy_guard.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

namespace prete::core {

std::string PolicyCheck::summary() const {
  if (valid) return "valid";
  std::ostringstream os;
  os << "invalid:";
  if (size_mismatch) os << " size-mismatch";
  if (non_finite > 0) os << " non-finite=" << non_finite;
  if (negative > 0) os << " negative=" << negative;
  if (overloaded_links > 0) os << " overloaded-links=" << overloaded_links;
  return os.str();
}

PolicyCheck validate_policy(const te::TeProblem& problem,
                            const te::TePolicy& policy, double tol) {
  PolicyCheck check;
  if (problem.network == nullptr || problem.flows == nullptr ||
      problem.tunnels == nullptr) {
    check.valid = false;
    check.size_mismatch = true;
    return check;
  }
  const net::TunnelSet& tunnels = *problem.tunnels;
  const auto n = static_cast<std::size_t>(tunnels.num_tunnels());
  if (policy.allocation.size() != n) {
    check.valid = false;
    check.size_mismatch = true;
    return check;
  }

  for (double a : policy.allocation) {
    if (!std::isfinite(a)) {
      ++check.non_finite;
    } else if (a < -tol) {
      ++check.negative;
    }
  }
  if (check.non_finite > 0) {
    // NaN entries would contaminate every sum below; the verdict is already
    // fatal, so skip the aggregate checks.
    check.valid = false;
    return check;
  }

  const net::Network& net = *problem.network;
  std::vector<double> load(static_cast<std::size_t>(net.num_links()), 0.0);
  for (const net::Tunnel& t : tunnels.tunnels()) {
    const double a = policy.allocation[static_cast<std::size_t>(t.id)];
    for (net::LinkId e : t.path) {
      load[static_cast<std::size_t>(e)] += a;
    }
  }
  for (net::LinkId e = 0; e < net.num_links(); ++e) {
    const double cap = net.link(e).capacity_gbps;
    if (load[static_cast<std::size_t>(e)] > cap + tol * std::max(1.0, cap)) {
      ++check.overloaded_links;
    }
  }

  check.valid = check.negative == 0 && check.overloaded_links == 0;
  return check;
}

}  // namespace prete::core
