#include "core/fault_campaign.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "core/policy_guard.h"
#include "te/evaluator.h"
#include "util/rng.h"

namespace prete::core {

namespace {

// Predictor whose failure mode the campaign arms per step.
class FaultyPredictor final : public ml::FailurePredictor {
 public:
  enum class Mode { kNormal, kNaN, kThrow };

  double predict(const optical::DegradationFeatures&) const override {
    switch (mode_) {
      case Mode::kNaN:
        return std::numeric_limits<double>::quiet_NaN();
      case Mode::kThrow:
        throw std::runtime_error("injected predictor fault");
      case Mode::kNormal:
        break;
    }
    return 0.35;
  }

  void set_mode(Mode mode) { mode_ = mode; }

 private:
  Mode mode_ = Mode::kNormal;
};

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fold_decision(std::uint64_t hash, int step,
                            const ControlDecision& decision) {
  hash = fnv1a(hash, &step, sizeof(step));
  const int level = static_cast<int>(decision.fallback_level);
  hash = fnv1a(hash, &level, sizeof(level));
  const unsigned char exceeded = decision.deadline_exceeded ? 1 : 0;
  hash = fnv1a(hash, &exceeded, sizeof(exceeded));
  for (double a : decision.policy.allocation) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &a, sizeof(bits));
    hash = fnv1a(hash, &bits, sizeof(bits));
  }
  return hash;
}

// Synthetic telemetry window for one step: healthy baseline with thermal
// noise; on degraded steps a mid-window pulse 4-6 dB above baseline with
// its own jitter, so the detector extracts nonzero gradient/fluctuation
// features. Derived entirely from the step's split stream.
std::vector<double> make_window(const FaultCampaignConfig& config,
                                util::Rng stream, bool degraded) {
  std::vector<double> trace(static_cast<std::size_t>(config.window_samples));
  const double pulse_db = 4.0 + 2.0 * stream.next_double();
  const std::size_t onset = trace.size() / 6;
  const std::size_t recovery = trace.size() - trace.size() / 6;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    double level = config.healthy_loss_db;
    if (degraded && i >= onset && i < recovery) level += pulse_db;
    trace[i] = level + 0.04 * (stream.next_double() - 0.5);
  }
  return trace;
}

}  // namespace

std::string FaultCampaignReport::summary() const {
  std::ostringstream os;
  os << "steps=" << steps << " faults=" << faults_injected
     << " exceptions=" << exceptions << " invalid=" << validator_failures
     << " rungs=[" << rung_count[0] << ',' << rung_count[1] << ','
     << rung_count[2] << ',' << rung_count[3] << ']'
     << " untrusted=" << untrusted_windows
     << " malformed=" << malformed_windows;
  if (group_cuts_injected > 0) {
    os << " group_cuts=" << group_cuts_injected << '/' << group_cuts_evaluated
       << " group_outages=" << group_cut_flow_outages;
  }
  os << " digest=" << decision_digest;
  return os.str();
}

FaultCampaignReport run_fault_campaign(const net::Topology& topology,
                                       const std::vector<double>& static_probs,
                                       const net::TrafficMatrix& demands,
                                       const FaultCampaignConfig& config) {
  using sim::FaultKind;

  // Forced prologue (steps 0-7): exercise every ladder rung determin-
  // istically. Step 0 collapses the solver before any decision exists, so
  // the only rung left is the static floor; step 1 runs clean to establish
  // a last-good policy and measure a full solve's pivot count; step 2
  // collapses again, landing on last-good; steps 3-7 sweep partial budgets
  // to catch the solve mid-flight with a usable incumbent.
  sim::FaultPlan plan;
  plan.seed = config.seed;
  plan.rates = config.rates;
  plan.forced = {{0, FaultKind::kSolverCollapse},
                 {1, FaultKind::kNone},
                 {2, FaultKind::kSolverCollapse},
                 {3, FaultKind::kDeadlineExpiry},
                 {4, FaultKind::kDeadlineExpiry},
                 {5, FaultKind::kDeadlineExpiry},
                 {6, FaultKind::kDeadlineExpiry},
                 {7, FaultKind::kDeadlineExpiry}};
  const sim::FaultInjector injector(plan, config.group_cuts);
  // Budget fractions for the incumbent sweep, in units of 1/16 of the
  // measured full-solve pivot count.
  const int budget_sixteenths[] = {8, 4, 2, 1, 12};

  auto predictor = std::make_shared<FaultyPredictor>();
  ControllerConfig controller_config;
  controller_config.te = config.te;
  Controller controller(topology, static_probs, predictor, controller_config);

  FaultCampaignReport report;
  report.steps = config.steps;
  report.decision_digest = 0xcbf29ce484222325ULL;  // FNV offset basis

  const util::Rng root(config.seed ^ 0x5afe5afe5afeULL);
  int full_solve_pivots = 0;

  for (int step = 0; step < config.steps; ++step) {
    const auto fiber =
        static_cast<net::FiberId>(step % topology.network.num_fibers());
    const FaultKind kind = injector.fault_at(step);
    if (kind != FaultKind::kNone) ++report.faults_injected;
    const int cut_group = injector.group_cut_at(step);
    if (cut_group >= 0) ++report.group_cuts_injected;

    // Healthy (no-degradation) windows keep the nullopt path exercised.
    const bool degraded = step < 8 || step % 9 != 8;
    std::vector<double> trace = make_window(
        config, root.split(static_cast<std::uint64_t>(step)), degraded);

    predictor->set_mode(FaultyPredictor::Mode::kNormal);
    controller.set_solver_budget(0);
    switch (kind) {
      case FaultKind::kTelemetryCorruption:
        injector.corrupt_trace(step, trace);
        break;
      case FaultKind::kPredictorNaN:
        predictor->set_mode(FaultyPredictor::Mode::kNaN);
        break;
      case FaultKind::kPredictorThrow:
        predictor->set_mode(FaultyPredictor::Mode::kThrow);
        break;
      case FaultKind::kDeadlineExpiry: {
        if (config.wall_clock_mode()) {
          // Wall-clock mode: the prologue's budget fractions scale the wall
          // budget instead of the pivot count, floored so the deadline is
          // armed (0 would mean unlimited) but still tight.
          double ms = config.expiry_wall_ms;
          if (step >= 3 && step <= 7) {
            const int frac = budget_sixteenths[step - 3];
            ms = config.expiry_wall_ms * static_cast<double>(frac) / 16.0;
          }
          controller.set_solver_budget(0, std::max(ms, 1e-3));
          break;
        }
        std::int64_t budget = sim::FaultInjector::kDeadlineExpiryPivots;
        if (step >= 3 && step <= 7 && full_solve_pivots > 0) {
          const int frac = budget_sixteenths[step - 3];
          budget = std::max<std::int64_t>(
              2, static_cast<std::int64_t>(full_solve_pivots) * frac / 16);
        }
        controller.set_solver_budget(budget);
        break;
      }
      case FaultKind::kSolverCollapse:
        if (config.wall_clock_mode()) {
          controller.set_solver_budget(0, std::max(config.collapse_wall_ms, 1e-3));
        } else {
          controller.set_solver_budget(
              sim::FaultInjector::kSolverCollapsePivots);
        }
        break;
      case FaultKind::kNone:
        break;
    }

    // A slice of steps delivers malformed window metadata to exercise the
    // input guards: the controller must reject them with nullopt.
    double healthy_loss = config.healthy_loss_db;
    optical::TimeSec t0 = static_cast<optical::TimeSec>(step) * 300;
    if (step > 8 && step % 13 == 9) {
      healthy_loss = std::numeric_limits<double>::quiet_NaN();
    } else if (step > 8 && step % 13 == 10) {
      t0 = -1;
    }

    try {
      const auto decision =
          controller.on_telemetry(fiber, trace, t0, healthy_loss, demands);
      if (!std::isfinite(healthy_loss) || t0 < 0) {
        ++report.malformed_windows;
        if (decision.has_value()) ++report.validator_failures;  // guard hole
      } else if (!decision.has_value()) {
        ++report.no_decision_steps;
      } else {
        ++report.decisions;
        ++report.rung_count[static_cast<std::size_t>(
            decision->fallback_level)];
        if (decision->deadline_exceeded) ++report.deadline_exceeded;
        if (!controller.last_telemetry_quality().trusted()) {
          ++report.untrusted_windows;
        }
        te::TeProblem problem;
        problem.network = &topology.network;
        problem.flows = &topology.flows;
        problem.tunnels = &controller.tunnels();
        problem.demands = demands;
        if (!validate_policy(problem, decision->policy).valid) {
          ++report.validator_failures;
        }
        report.decision_digest =
            fold_decision(report.decision_digest, step, *decision);
        if (cut_group >= 0) {
          // Stress the freshly installed policy under the correlated group
          // cut: every fiber of the SRLG group goes down at once. Losses
          // fold into the digest so the CI thread matrix also witnesses the
          // group-cut evaluation path bit-for-bit.
          te::FailureScenario scenario;
          scenario.fiber_failed = injector.group_cut_fibers(step);
          scenario.probability = 1.0;
          const auto losses =
              te::flow_losses(problem, decision->policy, scenario);
          ++report.group_cuts_evaluated;
          for (double loss : losses) {
            if (loss > 1e-4) ++report.group_cut_flow_outages;
            report.worst_group_cut_loss =
                std::max(report.worst_group_cut_loss, loss);
            std::uint64_t bits = 0;
            std::memcpy(&bits, &loss, sizeof(bits));
            report.decision_digest =
                fnv1a(report.decision_digest, &bits, sizeof(bits));
          }
        }
        if (kind == FaultKind::kNone &&
            decision->fallback_level == FallbackLevel::kFull) {
          full_solve_pivots = decision->solver_pivots;
        }
      }
    } catch (const std::exception&) {
      ++report.exceptions;
    }

    if (step % 8 == 7) controller.on_degradation_cleared();
  }
  return report;
}

}  // namespace prete::core
