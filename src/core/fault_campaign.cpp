#include "core/fault_campaign.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/epoch_pipeline.h"
#include "core/policy_guard.h"
#include "runtime/task_group.h"
#include "te/evaluator.h"
#include "util/rng.h"

namespace prete::core {

namespace {

using sim::FaultKind;

// One telemetry delivery the campaign will make. A kWindowDuplicate step
// contributes two deliveries (the primary plus its retransmit); every other
// step contributes one. Precomputing the full delivery sequence before any
// window is driven gives the pipelined path a race-free epoch -> delivery
// mapping (epoch indices are assigned in submission order).
struct Delivery {
  int step = 0;   // global step: fault/window/corruption streams, digest
  int local = 0;  // slice-local step: prologue/malformed/clearing schedules
  bool primary = true;        // false for the duplicate re-delivery
  bool last_of_step = true;   // clearing runs after the step's last delivery
  net::FiberId fiber = 0;
  std::vector<double> trace;
  optical::TimeSec t0 = 0;
  double healthy_loss = 0.0;
  bool bad_metadata = false;  // NaN healthy loss or negative start time
  bool dropped = false;       // kWindowDrop: empty trace, guards must reject
  FaultKind kind = FaultKind::kNone;
};

// Predictor whose failure mode the campaign arms per step. Serial drives
// call set_mode before each window; pipelined drives instead resolve the
// mode from the epoch executing on this thread (EpochPipeline's epoch
// scope), so concurrent preparation of different epochs cannot race on a
// shared mutable mode.
class FaultyPredictor final : public ml::FailurePredictor {
 public:
  enum class Mode { kNormal, kNaN, kThrow };

  static Mode mode_for(FaultKind kind) {
    switch (kind) {
      case FaultKind::kPredictorNaN:
        return Mode::kNaN;
      case FaultKind::kPredictorThrow:
        return Mode::kThrow;
      default:
        return Mode::kNormal;
    }
  }

  double predict(const optical::DegradationFeatures&) const override {
    Mode mode = mode_;
    if (deliveries_ != nullptr) {
      const std::int64_t epoch = EpochPipeline::current_epoch();
      if (epoch >= 0 &&
          epoch < static_cast<std::int64_t>(deliveries_->size())) {
        mode = mode_for((*deliveries_)[static_cast<std::size_t>(epoch)].kind);
      }
    }
    switch (mode) {
      case Mode::kNaN:
        return std::numeric_limits<double>::quiet_NaN();
      case Mode::kThrow:
        throw std::runtime_error("injected predictor fault");
      case Mode::kNormal:
        break;
    }
    return 0.35;
  }

  void set_mode(Mode mode) { mode_ = mode; }
  void set_schedule(const std::vector<Delivery>* deliveries) {
    deliveries_ = deliveries;
  }

 private:
  Mode mode_ = Mode::kNormal;
  const std::vector<Delivery>* deliveries_ = nullptr;
};

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fold_decision(std::uint64_t hash, int step,
                            const ControlDecision& decision) {
  hash = fnv1a(hash, &step, sizeof(step));
  const int level = static_cast<int>(decision.fallback_level);
  hash = fnv1a(hash, &level, sizeof(level));
  const unsigned char exceeded = decision.deadline_exceeded ? 1 : 0;
  hash = fnv1a(hash, &exceeded, sizeof(exceeded));
  for (double a : decision.policy.allocation) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &a, sizeof(bits));
    hash = fnv1a(hash, &bits, sizeof(bits));
  }
  return hash;
}

// Synthetic telemetry window for one step: healthy baseline with thermal
// noise; on degraded steps a mid-window pulse 4-6 dB above baseline with
// its own jitter, so the detector extracts nonzero gradient/fluctuation
// features. Derived entirely from the step's split stream.
std::vector<double> make_window(const FaultCampaignConfig& config,
                                util::Rng stream, bool degraded) {
  std::vector<double> trace(static_cast<std::size_t>(config.window_samples));
  const double pulse_db = 4.0 + 2.0 * stream.next_double();
  const std::size_t onset = trace.size() / 6;
  const std::size_t recovery = trace.size() - trace.size() / 6;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    double level = config.healthy_loss_db;
    if (degraded && i >= onset && i < recovery) level += pulse_db;
    trace[i] = level + 0.04 * (stream.next_double() - 0.5);
  }
  return trace;
}

// Precomputes every delivery of one contiguous slice [start, start + len).
// Schedules that shape the ladder (forced prologue, malformed metadata,
// clearing, budget sweep) run on the LOCAL step so every shard exercises
// them from a fresh controller; streams that shape the data (window
// waveform, sampled faults, corruption, stalls) run on the GLOBAL step so a
// sharded campaign samples the same fault universe as an unsharded one.
std::vector<Delivery> build_deliveries(const net::Topology& topology,
                                       const FaultCampaignConfig& config,
                                       const sim::FaultInjector& injector,
                                       const util::Rng& root, int start,
                                       int len) {
  std::vector<Delivery> deliveries;
  deliveries.reserve(static_cast<std::size_t>(len));
  for (int local = 0; local < len; ++local) {
    const int step = start + local;
    Delivery d;
    d.step = step;
    d.local = local;
    d.fiber = static_cast<net::FiberId>(
        step % topology.network.num_fibers());
    d.kind = injector.fault_at(step);

    // Healthy (no-degradation) windows keep the nullopt path exercised.
    const bool degraded = local < 8 || local % 9 != 8;
    d.trace = make_window(config, root.split(static_cast<std::uint64_t>(step)),
                          degraded);
    d.healthy_loss = config.healthy_loss_db;
    d.t0 = static_cast<optical::TimeSec>(step) * 300;

    // A slice of steps delivers malformed window metadata to exercise the
    // input guards: the controller must reject them with nullopt.
    if (local > 8 && local % 13 == 9) {
      d.healthy_loss = std::numeric_limits<double>::quiet_NaN();
      d.bad_metadata = true;
    } else if (local > 8 && local % 13 == 10) {
      d.t0 = -1;
      d.bad_metadata = true;
    }

    switch (d.kind) {
      case FaultKind::kTelemetryCorruption:
        injector.corrupt_trace(step, d.trace);
        break;
      case FaultKind::kWindowDrop:
        d.trace.clear();
        d.dropped = true;
        break;
      case FaultKind::kWindowDuplicate: {
        d.last_of_step = false;
        deliveries.push_back(d);
        Delivery dup = deliveries.back();
        dup.primary = false;
        dup.last_of_step = true;
        deliveries.push_back(std::move(dup));
        continue;
      }
      default:
        break;
    }
    deliveries.push_back(std::move(d));
  }
  return deliveries;
}

// Per-slice mutable driving state shared by the serial and pipelined paths.
struct SliceState {
  FaultCampaignReport report;
  int full_solve_pivots = 0;
};

// Arms the controller for one delivery's fault, exactly as the historical
// serial campaign did at the top of each step. Runs strictly before the
// delivery's solve (serially, or on the pipeline's commit thread).
void arm_delivery(Controller& controller, const FaultCampaignConfig& config,
                  const Delivery& d, const SliceState& state) {
  static const int budget_sixteenths[] = {8, 4, 2, 1, 12};
  controller.set_solver_budget(0);
  switch (d.kind) {
    case FaultKind::kDeadlineExpiry: {
      if (config.wall_clock_mode()) {
        // Wall-clock mode: the prologue's budget fractions scale the wall
        // budget instead of the pivot count, floored so the deadline is
        // armed (0 would mean unlimited) but still tight.
        double ms = config.expiry_wall_ms;
        if (d.local >= 3 && d.local <= 7) {
          const int frac = budget_sixteenths[d.local - 3];
          ms = config.expiry_wall_ms * static_cast<double>(frac) / 16.0;
        }
        controller.set_solver_budget(0, std::max(ms, 1e-3));
        break;
      }
      std::int64_t budget = sim::FaultInjector::kDeadlineExpiryPivots;
      if (d.local >= 3 && d.local <= 7 && state.full_solve_pivots > 0) {
        const int frac = budget_sixteenths[d.local - 3];
        budget = std::max<std::int64_t>(
            2, static_cast<std::int64_t>(state.full_solve_pivots) * frac / 16);
      }
      controller.set_solver_budget(budget);
      break;
    }
    case FaultKind::kSolverCollapse:
      if (config.wall_clock_mode()) {
        controller.set_solver_budget(0, std::max(config.collapse_wall_ms, 1e-3));
      } else {
        controller.set_solver_budget(sim::FaultInjector::kSolverCollapsePivots);
      }
      break;
    case FaultKind::kSolverThrow:
      controller.arm_solver_exception(1);
      break;
    default:
      break;
  }
}

// Folds one committed delivery's outcome into the slice report: guard
// accounting, validator re-check, digest folding, group-cut stress, and the
// full-solve pivot measurement. Identical for the serial and pipelined
// drives — that sameness is what makes their digests comparable.
void fold_outcome(const net::Topology& topology,
                  const net::TrafficMatrix& demands,
                  const sim::FaultInjector& injector,
                  const Controller& controller, const Delivery& d,
                  const std::optional<ControlDecision>& decision,
                  const optical::TelemetryQuality& quality,
                  SliceState& state) {
  FaultCampaignReport& report = state.report;
  if (d.bad_metadata || d.dropped) {
    if (d.dropped) {
      ++report.dropped_windows;
    } else {
      ++report.malformed_windows;
    }
    if (decision.has_value()) ++report.validator_failures;  // guard hole
    return;
  }
  if (!decision.has_value()) {
    ++report.no_decision_steps;
    return;
  }
  ++report.decisions;
  ++report.rung_count[static_cast<std::size_t>(decision->fallback_level)];
  if (decision->deadline_exceeded) ++report.deadline_exceeded;
  if (!quality.trusted()) ++report.untrusted_windows;
  te::TeProblem problem;
  problem.network = &topology.network;
  problem.flows = &topology.flows;
  problem.tunnels = &controller.tunnels();
  problem.demands = demands;
  if (!validate_policy(problem, decision->policy).valid) {
    ++report.validator_failures;
  }
  report.decision_digest =
      fold_decision(report.decision_digest, d.step, *decision);
  if (injector.group_cut_at(d.step) >= 0) {
    // Stress the freshly installed policy under the correlated group cut:
    // every fiber of the SRLG group goes down at once. Losses fold into the
    // digest so the CI thread matrix also witnesses the group-cut
    // evaluation path bit-for-bit.
    te::FailureScenario scenario;
    scenario.fiber_failed = injector.group_cut_fibers(d.step);
    scenario.probability = 1.0;
    const auto losses = te::flow_losses(problem, decision->policy, scenario);
    ++report.group_cuts_evaluated;
    for (double loss : losses) {
      if (loss > 1e-4) ++report.group_cut_flow_outages;
      report.worst_group_cut_loss =
          std::max(report.worst_group_cut_loss, loss);
      std::uint64_t bits = 0;
      std::memcpy(&bits, &loss, sizeof(bits));
      report.decision_digest =
          fnv1a(report.decision_digest, &bits, sizeof(bits));
    }
  }
  if (d.kind == FaultKind::kNone &&
      decision->fallback_level == FallbackLevel::kFull) {
    state.full_solve_pivots = decision->solver_pivots;
  }
}

// Runs one contiguous slice [start, start + len) against a fresh
// Controller, serially or through an EpochPipeline, and returns its report
// (digest seeded from the FNV offset basis).
FaultCampaignReport run_campaign_slice(const net::Topology& topology,
                                       const std::vector<double>& static_probs,
                                       const net::TrafficMatrix& demands,
                                       const FaultCampaignConfig& config,
                                       int start, int len) {
  // Forced prologue (local steps 0-7, remapped onto this slice's global
  // step numbers): exercise every ladder rung deterministically. Local step
  // 0 collapses the solver before any decision exists, so the only rung
  // left is the static floor; local step 1 runs clean to establish a
  // last-good policy and measure a full solve's pivot count; local step 2
  // collapses again, landing on last-good; local steps 3-7 sweep partial
  // budgets to catch the solve mid-flight with a usable incumbent.
  sim::FaultPlan plan;
  plan.seed = config.seed;
  plan.rates = config.rates;
  plan.forced = {{start + 0, FaultKind::kSolverCollapse},
                 {start + 1, FaultKind::kNone},
                 {start + 2, FaultKind::kSolverCollapse},
                 {start + 3, FaultKind::kDeadlineExpiry},
                 {start + 4, FaultKind::kDeadlineExpiry},
                 {start + 5, FaultKind::kDeadlineExpiry},
                 {start + 6, FaultKind::kDeadlineExpiry},
                 {start + 7, FaultKind::kDeadlineExpiry}};
  const sim::FaultInjector injector(plan, config.group_cuts);
  const util::Rng root(config.seed ^ 0x5afe5afe5afeULL);

  const std::vector<Delivery> deliveries =
      build_deliveries(topology, config, injector, root, start, len);

  auto predictor = std::make_shared<FaultyPredictor>();
  ControllerConfig controller_config;
  controller_config.te = config.te;
  Controller controller(topology, static_probs, predictor, controller_config);

  SliceState state;
  state.report.steps = len;
  state.report.decision_digest = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const Delivery& d : deliveries) {
    if (d.primary && d.kind != FaultKind::kNone) {
      ++state.report.faults_injected;
    }
    if (d.primary && injector.group_cut_at(d.step) >= 0) {
      ++state.report.group_cuts_injected;
    }
  }

  if (!config.through_pipeline) {
    // Historical serial drive: one on_telemetry per delivery, duplicate
    // re-deliveries deduplicated at ingest by their (fiber, t0) identity.
    for (const Delivery& d : deliveries) {
      if (!d.primary) {
        ++state.report.duplicate_windows;
      } else {
        predictor->set_mode(FaultyPredictor::mode_for(d.kind));
        arm_delivery(controller, config, d, state);
        try {
          const auto decision = controller.on_telemetry(
              d.fiber, d.trace, d.t0, d.healthy_loss, demands);
          fold_outcome(topology, demands, injector, controller, d, decision,
                       controller.last_telemetry_quality(), state);
        } catch (const std::exception&) {
          ++state.report.exceptions;
        }
      }
      if (d.last_of_step && d.local % 8 == 7) {
        controller.on_degradation_cleared();
      }
    }
    return state.report;
  }

  // Pipelined drive: overlapped prepare on the pool, ordered commits, the
  // same per-delivery arming and folding on the commit thread. Predictor
  // faults resolve from the epoch scope (epoch index == delivery index, by
  // submission order), so concurrent preparation never races a mode flag.
  predictor->set_schedule(&deliveries);
  EpochPipelineConfig pipe_config;
  pipe_config.max_in_flight = std::max(1, config.pipeline_max_in_flight);
  pipe_config.cancel_superseded = config.pipeline_cancel_superseded;
  if (config.stall_ms > 0.0) {
    pipe_config.stage_watchdog_ms = config.stall_ms / 2.0;
  }
  EpochPipeline pipeline(controller, pipe_config);
  if (config.wall_clock_mode()) {
    // Soak mode exercises the retry/quarantine machinery: a refetch
    // redelivers the same window, so a transiently-bad window stays bad and
    // quarantines after the attempt budget. Digesting runs leave the
    // fetcher unset so pipelined semantics match serial exactly.
    pipeline.set_fetch_window(
        [&deliveries](std::size_t epoch, int) { return deliveries[epoch].trace; });
  }
  pipeline.set_before_solve([&](std::size_t epoch) {
    arm_delivery(controller, config, deliveries[epoch], state);
  });
  pipeline.set_after_commit([&](std::size_t epoch, const EpochResult& r) {
    const Delivery& d = deliveries[epoch];
    switch (r.status) {
      case EpochStatus::kDuplicate:
        ++state.report.duplicate_windows;
        break;
      case EpochStatus::kQuarantined:
        ++state.report.quarantined;
        break;
      case EpochStatus::kStageFault:
        // A fault the pipeline could not contain inside the ladder — the
        // moral equivalent of the serial drive's escaped exception.
        ++state.report.exceptions;
        break;
      default:
        fold_outcome(topology, demands, injector, controller, d, r.decision,
                     r.quality, state);
        break;
    }
    if (r.superseded) ++state.report.superseded;
    if (d.last_of_step && d.local % 8 == 7) {
      controller.on_degradation_cleared();
    }
  });
  for (const Delivery& d : deliveries) {
    EpochInput input;
    input.fiber = d.fiber;
    input.trace_db = d.trace;
    input.trace_start_sec = d.t0;
    input.healthy_loss_db = d.healthy_loss;
    input.demands = demands;
    if (d.kind == FaultKind::kStageStall) {
      input.stall_prepare_ms = injector.stall_ms_at(d.step, config.stall_ms);
    }
    pipeline.submit(std::move(input));
  }
  pipeline.drain();
  state.report.watchdog_trips +=
      static_cast<int>(pipeline.stats().watchdog_trips);
  return state.report;
}

// Accumulates a slice report into the campaign total (digest handled by the
// caller, which folds per-slice digests in shard order).
void merge_report(FaultCampaignReport& total, const FaultCampaignReport& s) {
  total.faults_injected += s.faults_injected;
  total.exceptions += s.exceptions;
  total.validator_failures += s.validator_failures;
  total.decisions += s.decisions;
  total.no_decision_steps += s.no_decision_steps;
  total.malformed_windows += s.malformed_windows;
  total.untrusted_windows += s.untrusted_windows;
  total.deadline_exceeded += s.deadline_exceeded;
  for (std::size_t r = 0; r < total.rung_count.size(); ++r) {
    total.rung_count[r] += s.rung_count[r];
  }
  total.group_cuts_injected += s.group_cuts_injected;
  total.group_cuts_evaluated += s.group_cuts_evaluated;
  total.group_cut_flow_outages += s.group_cut_flow_outages;
  total.worst_group_cut_loss =
      std::max(total.worst_group_cut_loss, s.worst_group_cut_loss);
  total.dropped_windows += s.dropped_windows;
  total.duplicate_windows += s.duplicate_windows;
  total.quarantined += s.quarantined;
  total.superseded += s.superseded;
  total.watchdog_trips += s.watchdog_trips;
}

}  // namespace

std::string FaultCampaignReport::summary() const {
  std::ostringstream os;
  os << "steps=" << steps << " faults=" << faults_injected
     << " exceptions=" << exceptions << " invalid=" << validator_failures
     << " rungs=[" << rung_count[0] << ',' << rung_count[1] << ','
     << rung_count[2] << ',' << rung_count[3] << ']'
     << " untrusted=" << untrusted_windows
     << " malformed=" << malformed_windows;
  if (dropped_windows > 0 || duplicate_windows > 0) {
    os << " dropped=" << dropped_windows << " dup=" << duplicate_windows;
  }
  if (quarantined > 0) os << " quarantined=" << quarantined;
  if (superseded > 0) os << " superseded=" << superseded;
  if (group_cuts_injected > 0) {
    os << " group_cuts=" << group_cuts_injected << '/' << group_cuts_evaluated
       << " group_outages=" << group_cut_flow_outages;
  }
  os << " digest=" << decision_digest;
  return os.str();
}

FaultCampaignReport run_fault_campaign(const net::Topology& topology,
                                       const std::vector<double>& static_probs,
                                       const net::TrafficMatrix& demands,
                                       const FaultCampaignConfig& config) {
  const int shards =
      std::clamp(config.shards, 1, std::max(1, config.steps));
  if (shards == 1) {
    return run_campaign_slice(topology, static_probs, demands, config, 0,
                              config.steps);
  }

  // Contiguous slices, each against its own fresh controller, run
  // concurrently on the global pool. Slice results land in preassigned
  // elements and digests fold in shard order afterwards, so the combined
  // report is a pure function of (inputs, config) — bit-identical at any
  // thread count.
  std::vector<int> slice_start(static_cast<std::size_t>(shards), 0);
  std::vector<int> slice_len(static_cast<std::size_t>(shards), 0);
  const int base = config.steps / shards;
  const int extra = config.steps % shards;
  int cursor = 0;
  for (int s = 0; s < shards; ++s) {
    slice_start[static_cast<std::size_t>(s)] = cursor;
    slice_len[static_cast<std::size_t>(s)] = base + (s < extra ? 1 : 0);
    cursor += slice_len[static_cast<std::size_t>(s)];
  }

  std::vector<FaultCampaignReport> slices(static_cast<std::size_t>(shards));
  runtime::TaskGroup group;
  for (int s = 0; s < shards; ++s) {
    group.run([&, s] {
      slices[static_cast<std::size_t>(s)] = run_campaign_slice(
          topology, static_probs, demands, config,
          slice_start[static_cast<std::size_t>(s)],
          slice_len[static_cast<std::size_t>(s)]);
    });
  }
  group.wait();

  FaultCampaignReport total;
  total.steps = config.steps;
  total.decision_digest = 0xcbf29ce484222325ULL;
  for (const FaultCampaignReport& slice : slices) {
    merge_report(total, slice);
    total.decision_digest = fnv1a(total.decision_digest,
                                  &slice.decision_digest,
                                  sizeof(slice.decision_digest));
  }
  return total;
}

}  // namespace prete::core
