#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/controller.h"
#include "net/topology.h"
#include "net/traffic.h"
#include "sim/fault_injector.h"

namespace prete::core {

// Configuration of a deterministic fault campaign against the controller.
// Everything — fault sampling, telemetry waveforms, corruption shapes — is
// derived from `seed` via split streams, so a campaign is a pure function
// of (topology, static_probs, demands, config) and bit-identical at any
// thread count.
struct FaultCampaignConfig {
  int steps = 256;
  std::uint64_t seed = 7;
  // Probabilistic fault mix for the steps after the forced prologue. The
  // defaults sum to 0.85, so a 256-step campaign injects ~218 faults.
  sim::FaultRates rates{0.35, 0.15, 0.15, 0.10, 0.10};
  // Synthetic telemetry shape.
  double healthy_loss_db = 2.0;
  int window_samples = 120;
  te::PreTeConfig te;
  // Wall-clock budget mode: when either value is positive, solver-budget
  // faults arm wall-clock deadlines (milliseconds) instead of pivot
  // budgets — kSolverCollapse steps get `collapse_wall_ms`, kDeadlineExpiry
  // steps get `expiry_wall_ms` scaled by the prologue's budget fractions.
  // Wall-clock expiry is timing-dependent, so a wall-mode campaign's
  // decision_digest and rung mix are NOT reproducible run-to-run; soak
  // tests assert clean() and rung coverage, never the digest. Zero (the
  // default) keeps the deterministic pivot-budget faults.
  double collapse_wall_ms = 0.0;
  double expiry_wall_ms = 0.0;
  bool wall_clock_mode() const {
    return collapse_wall_ms > 0.0 || expiry_wall_ms > 0.0;
  }
  // Correlated group cuts (conduit/weather SRLG events): when enabled, each
  // step may additionally cut a whole risk group; the step's installed
  // policy is stress-evaluated under the expanded fiber cut and the losses
  // are folded into the decision digest. Disabled (the default) leaves the
  // campaign bit-identical to a pre-SRLG build.
  sim::GroupCutPlan group_cuts;
  // Sharding: the campaign's steps are split into `shards` contiguous
  // slices, each driven against its own fresh Controller concurrently on
  // the global thread pool. Every slice replays the forced rung prologue at
  // its first 8 local steps (remapped onto its global step numbers) so each
  // shard's ladder is fully exercised; window waveforms, sampled faults,
  // and corruption shapes keep their global-step streams. Per-slice digests
  // are folded in shard order, so the combined digest is bit-identical at
  // any thread count. shards = 1 (the default) reproduces the historical
  // single-controller campaign — same digest, same counters.
  int shards = 1;
  // Drive each slice's windows through a core::EpochPipeline (overlapped
  // prepare + ordered commit) instead of direct on_telemetry calls. The
  // decision sequence, and therefore the digest, is identical either way —
  // that equality is the pipelined-vs-serial determinism witness.
  bool through_pipeline = false;
  int pipeline_max_in_flight = 4;
  // Supersede-cancellation inside the pipeline. Timing-dependent: only
  // meaningful in wall-clock/soak campaigns, never in digest-asserting runs.
  bool pipeline_cancel_superseded = false;
  // Maximum injected stall for kStageStall steps (milliseconds). When
  // positive and through_pipeline, the pipeline watchdog is armed at half
  // this value so injected stalls trip it. Wall-clock behavior; keep 0 in
  // deterministic campaigns (kStageStall then degenerates to a no-op).
  double stall_ms = 0.0;
};

struct FaultCampaignReport {
  int steps = 0;
  int faults_injected = 0;      // steps with a non-kNone fault armed
  int exceptions = 0;           // exceptions escaping the controller (must be 0)
  int validator_failures = 0;   // installed policies failing validate_policy
  int decisions = 0;            // steps that produced a ControlDecision
  int no_decision_steps = 0;    // nullopt from on_telemetry
  int malformed_windows = 0;    // windows rejected by the input guards
  int untrusted_windows = 0;    // decisions taken on untrusted telemetry
  int deadline_exceeded = 0;    // decisions whose solve ran out of budget
  // Decisions per ladder rung, indexed by FallbackLevel.
  std::array<int, 4> rung_count{};
  // Correlated group-cut stress results (zero unless config.group_cuts is
  // enabled): cuts injected, policy evaluations performed (a cut landing on
  // a no-decision step is injected but not evaluable), flows pushed over
  // the loss tolerance, and the worst per-flow loss observed.
  int group_cuts_injected = 0;
  int group_cuts_evaluated = 0;
  int group_cut_flow_outages = 0;
  double worst_group_cut_loss = 0.0;
  // Control-plane fault accounting (zero unless the new FaultRates fields
  // are armed): dropped windows must yield no decision; duplicate
  // re-deliveries must be deduplicated at ingest; quarantined / superseded
  // / watchdog counters are populated by pipelined (through_pipeline) runs.
  int dropped_windows = 0;
  int duplicate_windows = 0;
  int quarantined = 0;
  int superseded = 0;
  int watchdog_trips = 0;
  // FNV-1a digest over every decision's (step, rung, deadline flag, policy
  // bits) — the bit-identity witness for the CI thread matrix.
  std::uint64_t decision_digest = 0;

  bool every_rung_exercised() const {
    for (int c : rung_count) {
      if (c == 0) return false;
    }
    return true;
  }
  bool clean() const { return exceptions == 0 && validator_failures == 0; }

  std::string summary() const;
};

// Drives a Controller through `config.steps` telemetry windows while
// injecting faults: corrupted traces, NaN/throwing predictors, starved
// solver budgets, and malformed window metadata. A forced prologue
// guarantees each ladder rung is exercised at least once (solver collapse
// before any decision -> static floor; collapse after a good decision ->
// last-good; a sweep of partial budgets -> incumbent); the remaining steps
// sample from config.rates. Every decision is re-validated with
// validate_policy, and any exception escaping the controller is counted —
// a clean run reports exceptions == 0 and validator_failures == 0.
FaultCampaignReport run_fault_campaign(const net::Topology& topology,
                                       const std::vector<double>& static_probs,
                                       const net::TrafficMatrix& demands,
                                       const FaultCampaignConfig& config = {});

}  // namespace prete::core
