#include "core/controller.h"

#include <stdexcept>

namespace prete::core {

Controller::Controller(const net::Topology& topology,
                       std::vector<double> static_fiber_probs,
                       std::shared_ptr<const ml::FailurePredictor> predictor,
                       ControllerConfig config)
    : topology_(topology),
      static_probs_(std::move(static_fiber_probs)),
      predictor_(std::move(predictor)),
      config_(config),
      tunnels_(net::build_tunnels(topology.network, topology.flows)),
      scheme_(static_probs_, config_.te) {
  if (static_cast<int>(static_probs_.size()) != topology.network.num_fibers()) {
    throw std::invalid_argument("static probabilities size mismatch");
  }
  if (!predictor_) throw std::invalid_argument("predictor is required");
}

ControlDecision Controller::run_pipeline(
    const te::DegradationScenario& scenario, const net::TrafficMatrix& demands,
    bool include_detection) {
  const auto outcome = scheme_.compute_for_degradation(
      topology_.network, topology_.flows, tunnels_, demands, scenario);

  ControlDecision decision;
  decision.policy = outcome.policy;
  decision.believed_scenarios = outcome.scenarios;
  decision.new_tunnels = static_cast<int>(outcome.tunnel_update.created.size());
  decision.phi = outcome.solver_result.phi;
  decision.solver_pivots = outcome.solver_result.simplex_pivots;
  sim::LatencyModel latency = config_.latency;
  if (!include_detection) latency.detection_ms = 0.0;
  decision.pipeline = sim::pipeline_trace(
      latency, decision.new_tunnels,
      static_cast<int>(outcome.scenarios.scenarios.size()));
  return decision;
}

ControlDecision Controller::on_te_period(const net::TrafficMatrix& demands) {
  return run_pipeline(
      te::DegradationScenario::none(topology_.network.num_fibers()), demands,
      /*include_detection=*/false);
}

std::optional<ControlDecision> Controller::on_telemetry(
    net::FiberId fiber, const std::vector<double>& trace_db,
    optical::TimeSec trace_start_sec, double healthy_loss_db,
    const net::TrafficMatrix& demands) {
  const optical::DegradationDetector detector(healthy_loss_db);
  const auto result =
      detector.scan(optical::interpolate_missing(trace_db), trace_start_sec,
                    topology_.network.fiber(fiber));
  if (result.degradations.empty()) return std::nullopt;
  // React to the first episode with an observed onset: a boundary-truncated
  // episode carries window-edge features (its degree is the walked noisy
  // level, its onset the window start), which would mislead the predictor.
  // When every episode in the window is truncated, react to the first one
  // anyway — stale features still beat ignoring a live degradation.
  const optical::DetectedDegradation* chosen = &result.degradations.front();
  for (const optical::DetectedDegradation& d : result.degradations) {
    if (!d.truncated_start) {
      chosen = &d;
      break;
    }
  }
  return on_degradation(chosen->features, demands);
}

ControlDecision Controller::on_degradation(
    const optical::DegradationFeatures& features,
    const net::TrafficMatrix& demands) {
  te::DegradationScenario scenario =
      te::DegradationScenario::none(topology_.network.num_fibers());
  const auto fiber = static_cast<std::size_t>(features.fiber_id);
  if (features.fiber_id < 0 || features.fiber_id >= topology_.network.num_fibers()) {
    throw std::out_of_range("degradation on unknown fiber");
  }
  scenario.degraded[fiber] = true;
  scenario.predicted_prob[fiber] = predictor_->predict(features);
  return run_pipeline(scenario, demands, /*include_detection=*/true);
}

void Controller::on_degradation_cleared() { tunnels_.clear_dynamic(); }

}  // namespace prete::core
