#include "core/controller.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/policy_guard.h"

namespace prete::core {

namespace {

// With the oracle on, every solve collects its trace so converged epochs can
// be harvested as training examples. Applied before the scheme copies the
// config, so the scheme's own MinMaxOptions carry the flag.
te::PreTeConfig with_trace_collection(te::PreTeConfig te, bool enabled) {
  if (enabled) te.solver.collect_trace = true;
  return te;
}

}  // namespace

Controller::Controller(const net::Topology& topology,
                       std::vector<double> static_fiber_probs,
                       std::shared_ptr<const ml::FailurePredictor> predictor,
                       ControllerConfig config)
    : topology_(topology),
      static_probs_(std::move(static_fiber_probs)),
      predictor_(std::move(predictor)),
      config_(config),
      tunnels_(net::build_tunnels(topology.network, topology.flows)),
      scheme_(static_probs_,
              with_trace_collection(config_.te, config_.learned_warm_start)),
      num_static_tunnels_(tunnels_.num_tunnels()) {
  if (static_cast<int>(static_probs_.size()) != topology.network.num_fibers()) {
    throw std::invalid_argument("static probabilities size mismatch");
  }
  if (!predictor_) throw std::invalid_argument("predictor is required");
  if (config_.learned_warm_start) {
    config_.te.solver.collect_trace = true;  // keep config() consistent
    oracle_.emplace(config_.oracle);         // validates the oracle config
  }
}

void Controller::set_solver_budget(std::int64_t pivot_budget, double wall_ms) {
  if (pivot_budget < 0) {
    throw std::invalid_argument("solver pivot budget must be >= 0");
  }
  // Rejects NaN too: !(NaN >= 0) is true.
  if (!(wall_ms >= 0.0)) {
    throw std::invalid_argument("solver wall budget must be >= 0 ms");
  }
  config_.solver_pivot_budget = pivot_budget;
  config_.solver_wall_ms = wall_ms;
}

te::TeProblem Controller::current_problem(
    const net::TrafficMatrix& demands) const {
  te::TeProblem problem;
  problem.network = &topology_.network;
  problem.flows = &topology_.flows;
  problem.tunnels = &tunnels_;
  problem.demands = demands;
  return problem;
}

std::optional<te::TePolicy> Controller::last_good_projection() const {
  if (!last_good_.has_value()) return std::nullopt;
  // The stored policy covers (a prefix of) the static tunnels, which keep
  // their ids across dynamic-tunnel churn; everything past the prefix gets
  // zero. Dropping allocations can only lower flow totals and link loads,
  // so a policy that validated when stored re-validates here.
  te::TePolicy projected;
  projected.allocation.assign(
      static_cast<std::size_t>(tunnels_.num_tunnels()), 0.0);
  const std::size_t n =
      std::min(projected.allocation.size(), last_good_->allocation.size());
  std::copy_n(last_good_->allocation.begin(), n,
              projected.allocation.begin());
  return projected;
}

te::TePolicy Controller::static_floor(const net::TrafficMatrix& demands) const {
  const net::Network& net = topology_.network;
  te::TePolicy policy;
  policy.allocation.assign(static_cast<std::size_t>(tunnels_.num_tunnels()),
                           0.0);
  for (const net::Flow& flow : topology_.flows) {
    const auto& tunnels = tunnels_.tunnels_for_flow(flow.id);
    if (tunnels.empty()) continue;
    const double d = demands[static_cast<std::size_t>(flow.id)];
    const double share = std::isfinite(d) && d > 0.0
                             ? d / static_cast<double>(tunnels.size())
                             : 0.0;
    for (net::TunnelId t : tunnels) {
      policy.allocation[static_cast<std::size_t>(t)] = share;
    }
  }
  // Scale the whole split down by the worst link-overload ratio so the
  // floor is capacity-safe by construction, whatever the demands are.
  std::vector<double> load(static_cast<std::size_t>(net.num_links()), 0.0);
  for (const net::Tunnel& t : tunnels_.tunnels()) {
    for (net::LinkId e : t.path) {
      load[static_cast<std::size_t>(e)] +=
          policy.allocation[static_cast<std::size_t>(t.id)];
    }
  }
  double worst = 1.0;
  for (net::LinkId e = 0; e < net.num_links(); ++e) {
    const double cap = net.link(e).capacity_gbps;
    if (cap > 0.0) {
      worst = std::max(worst, load[static_cast<std::size_t>(e)] / cap);
    } else if (load[static_cast<std::size_t>(e)] > 0.0) {
      worst = std::numeric_limits<double>::infinity();
    }
  }
  const double scale = std::isfinite(worst) ? 1.0 / worst : 0.0;
  for (double& a : policy.allocation) a *= scale;
  return policy;
}

ControlDecision Controller::run_pipeline(
    const te::DegradationScenario& scenario, const net::TrafficMatrix& demands,
    bool include_detection, const te::PreTeScheme::Prepared* prepared,
    util::Deadline* external) {
  // With an external deadline the configured budgets are armed on it and
  // it is threaded through the solve even when unlimited — that is what
  // lets another thread's request_cancel() reach the pivot loop. An
  // unlimited, never-cancelled external deadline leaves the solve bitwise
  // identical to the internal-deadline path.
  util::Deadline deadline = util::Deadline::unlimited();
  util::Deadline* budget = external;
  if (config_.solver_pivot_budget > 0) {
    (budget != nullptr ? budget : &deadline)
        ->set_pivot_budget(config_.solver_pivot_budget);
    if (budget == nullptr) budget = &deadline;
  }
  if (config_.solver_wall_ms > 0.0) {
    (budget != nullptr ? budget : &deadline)
        ->set_wall_clock_ms(config_.solver_wall_ms);
    if (budget == nullptr) budget = &deadline;
  }

  // Learned warm start: predict against the pre-update problem — the
  // steady-state epoch changes no tunnels, so the shape matches; when a
  // degradation grows the tunnel table mid-call, the solver's shape check
  // rejects the hint and the solve runs bitwise cold. Probability features
  // use the calibrated vector when the epoch was prepared, else the
  // believed per-fiber effective probabilities (predicted where degraded,
  // static elsewhere); featurize() maps non-finite entries to zero.
  std::vector<double> oracle_probs;
  std::optional<te::WarmHint> hint;
  if (oracle_) {
    if (prepared != nullptr) {
      oracle_probs = prepared->calibrated;
    } else {
      oracle_probs = static_probs_;
      for (std::size_t f = 0; f < oracle_probs.size(); ++f) {
        if (f < scenario.degraded.size() && scenario.degraded[f] &&
            f < scenario.predicted_prob.size()) {
          oracle_probs[f] = scenario.predicted_prob[f];
        }
      }
    }
    hint = oracle_->predict(current_problem(demands), oracle_probs);
  }

  ControlDecision decision;
  decision.phi = 1.0;
  decision.gap = 1.0;
  bool installed = false;

  // Rung 0/1: the full solve — or, when the deadline expires mid-solve, the
  // solver's best incumbent. Either way the candidate must pass the
  // validator before installation; a throw or a rejected policy descends
  // the ladder instead of propagating.
  try {
    if (armed_solver_faults_ > 0) {
      --armed_solver_faults_;
      throw std::runtime_error("injected solver exception");
    }
    const te::WarmHint* warm_hint = hint ? &*hint : nullptr;
    const auto outcome =
        prepared != nullptr
            ? scheme_.compute_with_prepared(topology_.network, topology_.flows,
                                            tunnels_, demands, *prepared,
                                            budget, warm_hint)
            : scheme_.compute_for_degradation(topology_.network,
                                              topology_.flows, tunnels_,
                                              demands, scenario, budget,
                                              warm_hint);
    decision.believed_scenarios = outcome.scenarios;
    decision.new_tunnels =
        static_cast<int>(outcome.tunnel_update.created.size());
    decision.solver_pivots = outcome.solver_result.simplex_pivots;
    decision.benders_iterations = outcome.solver_result.iterations;
    decision.cuts_replayed = outcome.solver_result.cuts_replayed;
    decision.cuts_invalidated = outcome.solver_result.cuts_invalidated;
    decision.cuts_banked = outcome.solver_result.cuts_banked;
    decision.hint_accepted = outcome.solver_result.hint_accepted;
    decision.hint_rejected = outcome.solver_result.hint_rejected;
    decision.hint_pivots_saved = outcome.solver_result.hint_pivots_saved;
    decision.deadline_exceeded = outcome.solver_result.deadline_exceeded;
    // Harvest the solve as a training example against the post-update
    // problem (the trace's allocation spans the grown tunnel table).
    // observe() itself filters out unconverged or policy-free solves.
    if (oracle_) {
      oracle_->observe(current_problem(demands), oracle_probs,
                       outcome.solver_result);
    }
    const PolicyCheck check =
        validate_policy(current_problem(demands), outcome.policy);
    bool usable = check.valid && !outcome.policy.allocation.empty();
    if (usable && outcome.solver_result.deadline_exceeded) {
      // A starved solve can hand back the trivial all-zero incumbent (it is
      // primal-feasible and validator-clean, but it drops every flow). The
      // lower rungs are strictly better than that, so an expired-deadline
      // incumbent must carry actual allocation to count as usable.
      double total_alloc = 0.0;
      for (double a : outcome.policy.allocation) total_alloc += a;
      double total_demand = 0.0;
      for (double d : demands) total_demand += std::max(d, 0.0);
      if (total_alloc <= 0.0 && total_demand > 0.0) usable = false;
    }
    if (usable) {
      decision.policy = outcome.policy;
      decision.phi = outcome.solver_result.phi;
      decision.gap = outcome.solver_result.gap();
      decision.fallback_level = outcome.solver_result.deadline_exceeded
                                    ? FallbackLevel::kIncumbent
                                    : FallbackLevel::kFull;
      installed = true;
    }
  } catch (const std::exception&) {
    decision.deadline_exceeded = budget != nullptr && budget->expired();
  }
  decision.superseded = external != nullptr && external->cancel_requested();

  // Rung 2: re-project the last validated policy onto the current tunnels.
  if (!installed) {
    if (auto projected = last_good_projection();
        projected.has_value() &&
        validate_policy(current_problem(demands), *projected).valid) {
      decision.policy = std::move(*projected);
      decision.fallback_level = FallbackLevel::kLastGood;
      installed = true;
    }
  }

  // Rung 3: the static floor always validates.
  if (!installed) {
    decision.policy = static_floor(demands);
    decision.fallback_level = FallbackLevel::kStaticFloor;
  }

  // Only healthy rungs refresh the last-good snapshot: re-installing a
  // fallback must not launder it into "good". A superseded (cancelled)
  // solve never refreshes it either, whatever rung it harvested — the
  // superseding epoch installs the policy that should become last-good.
  if (!decision.superseded &&
      (decision.fallback_level == FallbackLevel::kFull ||
       decision.fallback_level == FallbackLevel::kIncumbent)) {
    te::TePolicy trimmed = decision.policy;
    trimmed.allocation.resize(
        std::min(trimmed.allocation.size(),
                 static_cast<std::size_t>(num_static_tunnels_)));
    last_good_ = std::move(trimmed);
  }

  // Incremental oracle training runs after the decision is assembled — off
  // the decision's solve path — on the runtime pool (deterministic fold, so
  // the controller's decision stream stays bit-identical at any pool size).
  if (oracle_) oracle_->train();

  sim::LatencyModel latency = config_.latency;
  if (!include_detection) latency.detection_ms = 0.0;
  decision.pipeline = sim::pipeline_trace(
      latency, decision.new_tunnels,
      static_cast<int>(decision.believed_scenarios.scenarios.size()));
  return decision;
}

ControlDecision Controller::on_te_period(const net::TrafficMatrix& demands) {
  return run_pipeline(
      te::DegradationScenario::none(topology_.network.num_fibers()), demands,
      /*include_detection=*/false);
}

PreparedEpoch Controller::prepare_telemetry(
    net::FiberId fiber, const std::vector<double>& trace_db,
    optical::TimeSec trace_start_sec, double healthy_loss_db) const {
  PreparedEpoch prepared;
  // Consistency guards: a malformed window is rejected (empty quality)
  // rather than fed to detection. The one-week cap bounds the interpolation
  // cost a runaway collector can impose.
  constexpr std::size_t kMaxWindowSamples = 604800;  // 7 days at 1 Hz
  if (fiber < 0 || fiber >= topology_.network.num_fibers() ||
      trace_db.empty() || trace_db.size() > kMaxWindowSamples ||
      trace_start_sec < 0 || !std::isfinite(healthy_loss_db) ||
      healthy_loss_db <= 0.0) {
    prepared.malformed = true;
    return prepared;
  }

  const std::vector<double> clean =
      optical::sanitize_trace(trace_db, &prepared.quality);
  if (prepared.quality.all_missing) return prepared;

  const optical::DegradationDetector detector(healthy_loss_db);
  const auto result =
      detector.scan(clean, trace_start_sec, topology_.network.fiber(fiber));
  if (result.degradations.empty()) return prepared;

  if (!prepared.quality.trusted()) {
    // The window shows a degradation but its waveform is not trustworthy
    // (mostly missing, stuck-at, corrupt): skip the ML predictor — whose
    // features would be garbage — and react with the fiber's static
    // probability instead.
    prepared.scenario =
        te::DegradationScenario::none(topology_.network.num_fibers());
    prepared.scenario.degraded[static_cast<std::size_t>(fiber)] = true;
    prepared.scenario.predicted_prob[static_cast<std::size_t>(fiber)] =
        static_probs_[static_cast<std::size_t>(fiber)];
  } else {
    // React to the first episode with an observed onset: a boundary-
    // truncated episode carries window-edge features (its degree is the
    // walked noisy level, its onset the window start), which would mislead
    // the predictor. When every episode in the window is truncated, react
    // to the first one anyway — stale features still beat ignoring a live
    // degradation.
    const optical::DetectedDegradation* chosen = &result.degradations.front();
    for (const optical::DetectedDegradation& d : result.degradations) {
      if (!d.truncated_start) {
        chosen = &d;
        break;
      }
    }
    prepared.scenario = scenario_for_features(chosen->features);
  }
  prepared.has_signal = true;
  prepared.prepared =
      scheme_.prepare_scenarios(topology_.network, prepared.scenario);
  return prepared;
}

std::optional<ControlDecision> Controller::on_telemetry(
    net::FiberId fiber, const std::vector<double>& trace_db,
    optical::TimeSec trace_start_sec, double healthy_loss_db,
    const net::TrafficMatrix& demands) {
  const PreparedEpoch prepared =
      prepare_telemetry(fiber, trace_db, trace_start_sec, healthy_loss_db);
  last_telemetry_quality_ = prepared.quality;
  if (!prepared.has_signal) return std::nullopt;
  return decide_prepared(prepared, demands);
}

ControlDecision Controller::decide_prepared(const PreparedEpoch& prepared,
                                            const net::TrafficMatrix& demands,
                                            util::Deadline* external) {
  if (!prepared.has_signal) {
    throw std::invalid_argument("decide_prepared needs a prepared signal");
  }
  last_telemetry_quality_ = prepared.quality;
  return run_pipeline(prepared.scenario, demands, /*include_detection=*/true,
                      prepared.prepared.has_value() ? &*prepared.prepared
                                                    : nullptr,
                      external);
}

te::DegradationScenario Controller::scenario_for_features(
    const optical::DegradationFeatures& features) const {
  te::DegradationScenario scenario =
      te::DegradationScenario::none(topology_.network.num_fibers());
  const auto fiber = static_cast<std::size_t>(features.fiber_id);
  if (features.fiber_id < 0 ||
      features.fiber_id >= topology_.network.num_fibers()) {
    throw std::out_of_range("degradation on unknown fiber");
  }
  scenario.degraded[fiber] = true;
  // A throwing predictor is a component fault, not a reason to drop the
  // reaction: fall back to the fiber's static probability. (NaN predictions
  // are sanitized further down by PreTeScheme.)
  try {
    scenario.predicted_prob[fiber] = predictor_->predict(features);
  } catch (const std::exception&) {
    scenario.predicted_prob[fiber] = static_probs_[fiber];
  }
  return scenario;
}

ControlDecision Controller::on_degradation(
    const optical::DegradationFeatures& features,
    const net::TrafficMatrix& demands) {
  return run_pipeline(scenario_for_features(features), demands,
                      /*include_detection=*/true);
}

void Controller::on_degradation_cleared() { tunnels_.clear_dynamic(); }

}  // namespace prete::core
