#include "core/epoch_pipeline.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace prete::core {

namespace {

// Epoch scoping for stage code (see EpochPipeline::current_epoch). A stage
// runs wholly on one thread, so thread-local storage identifies the epoch
// without racing the overlap.
thread_local std::int64_t tl_current_epoch = -1;

struct EpochScope {
  std::int64_t saved;
  explicit EpochScope(std::int64_t epoch) : saved(tl_current_epoch) {
    tl_current_epoch = epoch;
  }
  ~EpochScope() { tl_current_epoch = saved; }
};

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

const char* epoch_status_name(EpochStatus status) {
  switch (status) {
    case EpochStatus::kDecided:
      return "decided";
    case EpochStatus::kNoSignal:
      return "no-signal";
    case EpochStatus::kMalformed:
      return "malformed";
    case EpochStatus::kDuplicate:
      return "duplicate";
    case EpochStatus::kQuarantined:
      return "quarantined";
    case EpochStatus::kStageFault:
      return "stage-fault";
  }
  return "unknown";
}

std::int64_t EpochPipeline::current_epoch() { return tl_current_epoch; }

EpochPipeline::EpochPipeline(Controller& controller,
                             EpochPipelineConfig config,
                             runtime::ThreadPool& pool)
    : controller_(controller),
      config_(config),
      pool_(pool),
      group_(pool) {
  config_.max_in_flight = std::max(1, config_.max_in_flight);
  config_.max_ingest_attempts = std::max(1, config_.max_ingest_attempts);
}

EpochPipeline::~EpochPipeline() {
  // Drain stragglers so no task outlives the pipeline; results are dropped.
  group_.wait();
}

bool EpochPipeline::sanitization_failed(
    const optical::TelemetryQuality& quality) {
  return quality.all_missing || (!quality.empty() && !quality.trusted());
}

std::size_t EpochPipeline::submit(EpochInput input) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t epoch = next_epoch_++;
  // Bounded admission: block while the pipeline is at depth, helping the
  // pool execute queued work so a single-worker pool cannot deadlock on a
  // submitter waiting for commits that only the pool can perform.
  while (in_flight_ >= static_cast<std::size_t>(config_.max_in_flight)) {
    lock.unlock();
    const bool ran = pool_.try_run_one();
    lock.lock();
    if (!ran && in_flight_ >= static_cast<std::size_t>(config_.max_in_flight)) {
      admit_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  ++in_flight_;
  ++stats_.submitted;
  stats_.max_in_flight_seen = std::max(stats_.max_in_flight_seen, in_flight_);

  auto slot = std::make_unique<Slot>();
  slot->result.epoch = epoch;
  // Ingest dedup: a window with the same (fiber, start-time) identity as
  // the previous admission is an exact re-delivery (collector retransmit)
  // and is dropped here — before it can double-drive the controller — in
  // both the pipelined and any serial mirror of this path.
  const bool duplicate = have_last_window_ &&
                         input.fiber == last_window_fiber_ &&
                         input.trace_start_sec == last_window_t0_;
  have_last_window_ = true;
  last_window_fiber_ = input.fiber;
  last_window_t0_ = input.trace_start_sec;
  slot->input = std::move(input);
  Slot* raw = slot.get();
  slots_.emplace(epoch, std::move(slot));

  if (duplicate) {
    raw->result.status = EpochStatus::kDuplicate;
    raw->ready = true;
    lock.unlock();
    commit_ready();
    return epoch;
  }
  lock.unlock();
  group_.run([this, epoch] {
    run_prepare(epoch);
    commit_ready();
  });
  return epoch;
}

void EpochPipeline::run_prepare(std::size_t epoch) {
  Slot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(epoch);
    if (it == slots_.end()) return;
    slot = it->second.get();
  }
  // Until `ready` is set, only this task touches the slot's payload.
  EpochScope scope(static_cast<std::int64_t>(epoch));
  const EpochInput& input = slot->input;
  EpochResult& result = slot->result;

  const bool watchdog_armed = config_.stage_watchdog_ms > 0.0;
  std::vector<double> refetched;
  std::size_t local_retries = 0;
  std::size_t local_trips = 0;
  for (int attempt = 0;; ++attempt) {
    result.ingest_attempts = attempt + 1;
    const std::vector<double>& trace =
        attempt == 0 ? input.trace_db : refetched;
    const auto started = std::chrono::steady_clock::now();
    // Injected stage stall (chaos only): inside the timed section so the
    // watchdog sees it, and only on the first attempt so a retry models the
    // transient fault clearing.
    if (attempt == 0) sleep_ms(input.stall_prepare_ms);
    bool stage_threw = false;
    try {
      slot->prepared = controller_.prepare_telemetry(
          input.fiber, trace, input.trace_start_sec, input.healthy_loss_db);
    } catch (const std::exception&) {
      stage_threw = true;
      slot->prepared = PreparedEpoch{};
    }
    const bool tripped =
        watchdog_armed && elapsed_ms(started) > config_.stage_watchdog_ms;
    if (tripped) ++local_trips;

    result.quality = slot->prepared.quality;
    const bool sanitize_bad =
        !stage_threw && !slot->prepared.malformed &&
        sanitization_failed(slot->prepared.quality);
    result.retry_hint = stage_threw || tripped
                            ? optical::RetryHint::kTransient
                            : slot->prepared.quality.retry_hint();

    if (!stage_threw && !tripped && !sanitize_bad) {
      result.status = slot->prepared.malformed ? EpochStatus::kMalformed
                      : slot->prepared.has_signal
                          ? EpochStatus::kDecided  // provisional; commit seals
                          : EpochStatus::kNoSignal;
      break;
    }

    // The stage failed this attempt. Retry only when a fetcher exists, the
    // failure is transient, and the attempt budget allows it; a structural
    // verdict is never worth a refetch (the poison would come back).
    const bool retryable = fetch_ &&
                           result.retry_hint == optical::RetryHint::kTransient &&
                           attempt + 1 < config_.max_ingest_attempts;
    if (retryable) {
      ++local_retries;
      sleep_ms(config_.retry_backoff_ms * static_cast<double>(1 << attempt));
      refetched = fetch_(epoch, attempt + 1);
      continue;
    }

    if (stage_threw) {
      // Fault isolation: a throwing prepare degrades this epoch, never the
      // pipeline. With a sane fiber we fall back to a static-probability
      // scenario — the commit's ladder then contains any repeat throw; with
      // a nonsense fiber there is nothing safe to react to.
      const auto num_fibers =
          static_cast<net::FiberId>(controller_.static_probs().size());
      if (input.fiber >= 0 && input.fiber < num_fibers) {
        slot->prepared.malformed = false;
        slot->prepared.has_signal = true;
        slot->prepared.scenario = te::DegradationScenario::none(num_fibers);
        slot->prepared.scenario.degraded[static_cast<std::size_t>(
            input.fiber)] = true;
        slot->prepared.scenario.predicted_prob[static_cast<std::size_t>(
            input.fiber)] =
            controller_.static_probs()[static_cast<std::size_t>(input.fiber)];
        slot->prepared.prepared.reset();
        result.status = EpochStatus::kDecided;
      } else {
        result.status = EpochStatus::kStageFault;
      }
      break;
    }
    if (fetch_ && sanitize_bad) {
      // Failed sanitization with the retry budget spent (or a structural
      // verdict): quarantine. The epoch is dropped rather than allowed to
      // drive a decision off a window known to be poisoned.
      slot->prepared.has_signal = false;
      result.status = EpochStatus::kQuarantined;
      break;
    }
    // No fetcher (or only a watchdog trip): proceed with what we have —
    // exactly the serial on_telemetry semantics, where untrusted-but-
    // degraded windows still decide on the static probability.
    result.status = slot->prepared.malformed ? EpochStatus::kMalformed
                    : slot->prepared.has_signal ? EpochStatus::kDecided
                                                : EpochStatus::kNoSignal;
    break;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  stats_.ingest_retries += local_retries;
  stats_.watchdog_trips += local_trips;
  if (result.status == EpochStatus::kDecided && config_.cancel_superseded &&
      committing_ && committing_epoch_ < epoch &&
      committing_deadline_ != nullptr) {
    // A fresher epoch is ready while an older solve is still running:
    // cancel the stale solve, harvesting its incumbent through the ladder.
    committing_deadline_->request_cancel();
    ++stats_.cancel_requests;
  }
  slot->ready = true;
}

void EpochPipeline::commit_ready() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (committing_) return;  // another thread owns the commit sequence
    auto it = slots_.find(next_commit_);
    if (it == slots_.end() || !it->second->ready) return;
    std::unique_ptr<Slot> slot = std::move(it->second);
    slots_.erase(it);
    const std::size_t epoch = slot->result.epoch;
    committing_ = true;
    committing_epoch_ = epoch;
    committing_deadline_ = &slot->deadline;
    lock.unlock();

    commit_one(epoch, *slot);

    lock.lock();
    committing_ = false;
    committing_deadline_ = nullptr;
    ++next_commit_;
    --in_flight_;
    switch (slot->result.status) {
      case EpochStatus::kDecided:
        ++stats_.decided;
        break;
      case EpochStatus::kNoSignal:
        ++stats_.no_signal;
        break;
      case EpochStatus::kMalformed:
        ++stats_.malformed;
        break;
      case EpochStatus::kDuplicate:
        ++stats_.duplicates;
        break;
      case EpochStatus::kQuarantined:
        ++stats_.quarantined;
        break;
      case EpochStatus::kStageFault:
        ++stats_.stage_faults;
        break;
    }
    if (slot->result.superseded) ++stats_.superseded;
    results_.push_back(std::move(slot->result));
    admit_cv_.notify_all();
    drain_cv_.notify_all();
  }
}

void EpochPipeline::commit_one(std::size_t epoch, Slot& slot) {
  EpochScope scope(static_cast<std::int64_t>(epoch));
  EpochResult& result = slot.result;
  // Hooks run for every epoch — decision or not — in strict epoch order on
  // the commit thread, so harnesses can serialize per-epoch controller
  // mutations (budgets, clearing schedules) against the overlap.
  try {
    if (before_solve_) before_solve_(epoch);
    if (result.status == EpochStatus::kDecided) {
      ControlDecision decision = controller_.decide_prepared(
          slot.prepared, slot.input.demands, &slot.deadline);
      result.superseded = decision.superseded;
      result.decision = std::move(decision);
    }
  } catch (const std::exception&) {
    // A throwing commit (hook or an infrastructure failure below the
    // ladder) is contained to this epoch.
    result.status = EpochStatus::kStageFault;
    result.decision.reset();
  }
  if (after_commit_) {
    try {
      after_commit_(epoch, result);
    } catch (const std::exception&) {
      // A throwing observer must not poison the pipeline; the epoch's own
      // outcome (already recorded) stands.
    }
  }
}

std::vector<EpochResult> EpochPipeline::drain() {
  // Waiting on the TaskGroup (which helps execute pool work) covers every
  // prepare task; commits happen inside those tasks or synchronously in
  // submit, so afterwards nothing is in flight — except when a straggler is
  // between its group bookkeeping and the commit, which the cv covers.
  group_.wait();
  std::unique_lock<std::mutex> lock(mutex_);
  drain_cv_.wait(lock, [&] { return in_flight_ == 0; });
  std::vector<EpochResult> out = std::move(results_);
  results_.clear();
  return out;
}

EpochPipelineStats EpochPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace prete::core
