#include "sim/monte_carlo.h"

#include <cmath>

#include "te/prete.h"
#include "te/scenario.h"

namespace prete::sim {

MonteCarloStudy::MonteCarloStudy(const net::Topology& topology,
                                 te::PlantStatistics stats,
                                 MonteCarloConfig config)
    : topology_(topology),
      stats_(std::move(stats)),
      config_(config),
      base_tunnels_(net::build_tunnels(topology.network, topology.flows)) {}

MonteCarloStudy::Epoch MonteCarloStudy::sample_epoch(util::Rng& rng) const {
  Epoch epoch;
  const auto n = static_cast<std::size_t>(stats_.num_fibers());
  epoch.degraded.assign(n, false);
  epoch.failed.assign(n, false);
  for (std::size_t f = 0; f < n; ++f) {
    if (rng.bernoulli(stats_.degradation_prob[f])) {
      epoch.degraded[f] = true;
      // Degradation-conditioned cut.
      if (rng.bernoulli(stats_.cut_given_degradation[f])) {
        epoch.failed[f] = true;
      }
    } else if (rng.bernoulli((1.0 - stats_.alpha) * stats_.cut_prob[f])) {
      // Quiet-epoch (unpredictable) cut, per Theorem 4.1's discount.
      epoch.failed[f] = true;
    }
  }
  return epoch;
}

double MonteCarloStudy::epoch_availability(const te::TeProblem& problem,
                                           const te::TePolicy& policy,
                                           const Epoch& epoch) const {
  te::FailureScenario scenario;
  scenario.fiber_failed = epoch.failed;
  scenario.probability = 1.0;
  const auto losses = te::flow_losses(problem, policy, scenario);
  int ok = 0;
  for (double loss : losses) {
    if (loss <= config_.loss_tolerance) ++ok;
  }
  return losses.empty() ? 1.0
                        : static_cast<double>(ok) /
                              static_cast<double>(losses.size());
}

MonteCarloResult MonteCarloStudy::run_static(te::TeScheme& scheme,
                                             const net::TrafficMatrix& demands,
                                             util::Rng& rng) const {
  te::TeProblem problem;
  problem.network = &topology_.network;
  problem.flows = &topology_.flows;
  problem.tunnels = &base_tunnels_;
  problem.demands = demands;
  const auto believed = te::generate_failure_scenarios(
      stats_.cut_prob, config_.planning_scenarios);
  const te::TePolicy policy = scheme.compute(problem, believed);

  MonteCarloResult result;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int e = 0; e < config_.epochs; ++e) {
    const Epoch epoch = sample_epoch(rng);
    bool any_degr = false;
    bool any_cut = false;
    for (std::size_t f = 0; f < epoch.degraded.size(); ++f) {
      any_degr = any_degr || epoch.degraded[f];
      any_cut = any_cut || epoch.failed[f];
    }
    result.epochs_with_degradation += any_degr ? 1 : 0;
    result.epochs_with_cut += any_cut ? 1 : 0;
    const double a = epoch_availability(problem, policy, epoch);
    sum += a;
    sum_sq += a * a;
  }
  const double n = static_cast<double>(config_.epochs);
  result.mean_flow_availability = sum / n;
  const double var =
      std::max(0.0, sum_sq / n - result.mean_flow_availability *
                                     result.mean_flow_availability);
  result.standard_error = std::sqrt(var / n);
  return result;
}

MonteCarloResult MonteCarloStudy::run_prete(const net::TrafficMatrix& demands,
                                            util::Rng& rng) const {
  te::PreTeConfig config;
  config.beta = config_.beta;
  config.alpha = stats_.alpha;
  config.tunnel_update = config_.tunnel_update;
  config.scenario_options = config_.planning_scenarios;

  // Policies are cached per degradation signature: no-degradation, or a
  // single degraded fiber (multi-degradation epochs are second-order rare
  // and reuse the first degraded fiber's policy as an approximation).
  struct CachedPolicy {
    net::TunnelSet tunnels{0};
    te::TePolicy policy;
    bool ready = false;
  };
  std::vector<CachedPolicy> cache(
      static_cast<std::size_t>(stats_.num_fibers()) + 1);

  auto policy_for = [&](int degraded_fiber) -> CachedPolicy& {
    auto& slot = cache[static_cast<std::size_t>(degraded_fiber + 1)];
    if (slot.ready) return slot;
    slot.tunnels = base_tunnels_;
    te::PreTeScheme prete(stats_.cut_prob, config);
    te::DegradationScenario scenario =
        te::DegradationScenario::none(stats_.num_fibers());
    if (degraded_fiber >= 0) {
      scenario.degraded[static_cast<std::size_t>(degraded_fiber)] = true;
      scenario.predicted_prob[static_cast<std::size_t>(degraded_fiber)] =
          stats_.cut_given_degradation[static_cast<std::size_t>(degraded_fiber)];
    }
    const auto outcome = prete.compute_for_degradation(
        topology_.network, topology_.flows, slot.tunnels, demands, scenario);
    slot.policy = outcome.policy;
    slot.ready = true;
    return slot;
  };

  MonteCarloResult result;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int e = 0; e < config_.epochs; ++e) {
    const Epoch epoch = sample_epoch(rng);
    int degraded_fiber = -1;
    bool any_cut = false;
    for (std::size_t f = 0; f < epoch.degraded.size(); ++f) {
      if (epoch.degraded[f] && degraded_fiber < 0) {
        degraded_fiber = static_cast<int>(f);
      }
      any_cut = any_cut || epoch.failed[f];
    }
    result.epochs_with_degradation += degraded_fiber >= 0 ? 1 : 0;
    result.epochs_with_cut += any_cut ? 1 : 0;

    CachedPolicy& deployed = policy_for(degraded_fiber);
    te::TeProblem problem;
    problem.network = &topology_.network;
    problem.flows = &topology_.flows;
    problem.tunnels = &deployed.tunnels;
    problem.demands = demands;
    const double a = epoch_availability(problem, deployed.policy, epoch);
    sum += a;
    sum_sq += a * a;
  }
  const double n = static_cast<double>(config_.epochs);
  result.mean_flow_availability = sum / n;
  const double var =
      std::max(0.0, sum_sq / n - result.mean_flow_availability *
                                     result.mean_flow_availability);
  result.standard_error = std::sqrt(var / n);
  return result;
}

}  // namespace prete::sim
