#include "sim/monte_carlo.h"

#include <cmath>
#include <limits>

#include "runtime/parallel.h"
#include "util/deadline.h"
#include "te/prete.h"
#include "te/scenario.h"

namespace prete::sim {

namespace {

// Per-epoch accumulator folded by parallel_reduce in fixed chunk order.
struct EpochAccumulator {
  double sum = 0.0;
  double sum_sq = 0.0;
  int degraded = 0;
  int cut = 0;
};

EpochAccumulator merge(EpochAccumulator a, const EpochAccumulator& b) {
  a.sum += b.sum;
  a.sum_sq += b.sum_sq;
  a.degraded += b.degraded;
  a.cut += b.cut;
  return a;
}

// Epochs per scheduled task: sampling + one loss evaluation is cheap, so
// batch enough of them to amortize the pool overhead.
constexpr std::size_t kEpochGrain = 16;

MonteCarloResult finalize(const EpochAccumulator& acc, int epochs) {
  MonteCarloResult result;
  result.epochs_with_degradation = acc.degraded;
  result.epochs_with_cut = acc.cut;
  const double n = static_cast<double>(epochs);
  result.mean_flow_availability = acc.sum / n;
  const double var =
      std::max(0.0, acc.sum_sq / n - result.mean_flow_availability *
                                         result.mean_flow_availability);
  result.standard_error = std::sqrt(var / n);
  return result;
}

}  // namespace

MonteCarloStudy::MonteCarloStudy(const net::Topology& topology,
                                 te::PlantStatistics stats,
                                 MonteCarloConfig config)
    : topology_(topology),
      stats_(std::move(stats)),
      config_(config),
      base_tunnels_(net::build_tunnels(topology.network, topology.flows)) {}

MonteCarloStudy::Epoch MonteCarloStudy::sample_epoch(util::Rng& rng) const {
  Epoch epoch;
  const auto n = static_cast<std::size_t>(stats_.num_fibers());
  epoch.degraded.assign(n, false);
  epoch.failed.assign(n, false);
  for (std::size_t f = 0; f < n; ++f) {
    if (rng.bernoulli(stats_.degradation_prob[f])) {
      epoch.degraded[f] = true;
      // Degradation-conditioned cut.
      if (rng.bernoulli(stats_.cut_given_degradation[f])) {
        epoch.failed[f] = true;
      }
    } else if (rng.bernoulli((1.0 - stats_.alpha) * stats_.cut_prob[f])) {
      // Quiet-epoch (unpredictable) cut, per Theorem 4.1's discount.
      epoch.failed[f] = true;
    }
  }
  // Correlated events (conduit dig-ups, weather cells) stack on the
  // independent draws: abrupt multi-fiber cuts with no degradation warning.
  if (config_.correlated_nature != nullptr) {
    for (const te::CutEvent& event : config_.correlated_nature->events) {
      if (!rng.bernoulli(event.probability)) continue;
      for (std::size_t i = 0; i < event.fibers.size(); ++i) {
        if (rng.bernoulli(event.conditional[i])) {
          epoch.failed[static_cast<std::size_t>(event.fibers[i])] = true;
        }
      }
    }
  }
  return epoch;
}

double MonteCarloStudy::epoch_availability(const te::TeProblem& problem,
                                           const te::TePolicy& policy,
                                           const Epoch& epoch) const {
  te::FailureScenario scenario;
  scenario.fiber_failed = epoch.failed;
  scenario.probability = 1.0;
  const auto losses = te::flow_losses(problem, policy, scenario);
  int ok = 0;
  for (double loss : losses) {
    if (loss <= config_.loss_tolerance) ++ok;
  }
  return losses.empty() ? 1.0
                        : static_cast<double>(ok) /
                              static_cast<double>(losses.size());
}

MonteCarloResult MonteCarloStudy::run_static(te::TeScheme& scheme,
                                             const net::TrafficMatrix& demands,
                                             util::Rng& rng) const {
  te::TeProblem problem;
  problem.network = &topology_.network;
  problem.flows = &topology_.flows;
  problem.tunnels = &base_tunnels_;
  problem.demands = demands;
  const auto believed =
      config_.planning_source
          ? config_.planning_source(stats_.cut_prob)
          : te::generate_failure_scenarios(stats_.cut_prob,
                                           config_.planning_scenarios);
  const te::TePolicy policy = scheme.compute(problem, believed);

  // One draw advances the caller's rng identically at any thread count;
  // epoch e samples from the index-derived stream root.split(e).
  const util::Rng root(rng.next_u64());
  const EpochAccumulator total = runtime::parallel_reduce(
      static_cast<std::size_t>(config_.epochs), EpochAccumulator{},
      [&](std::size_t e) {
        util::Rng stream = root.split(e);
        const Epoch epoch = sample_epoch(stream);
        EpochAccumulator acc;
        bool any_degr = false;
        bool any_cut = false;
        for (std::size_t f = 0; f < epoch.degraded.size(); ++f) {
          any_degr = any_degr || epoch.degraded[f];
          any_cut = any_cut || epoch.failed[f];
        }
        acc.degraded = any_degr ? 1 : 0;
        acc.cut = any_cut ? 1 : 0;
        const double a = epoch_availability(problem, policy, epoch);
        acc.sum = a;
        acc.sum_sq = a * a;
        return acc;
      },
      merge, kEpochGrain);
  return finalize(total, config_.epochs);
}

MonteCarloResult MonteCarloStudy::run_prete(const net::TrafficMatrix& demands,
                                            util::Rng& rng,
                                            const FaultInjector* faults) const {
  te::PreTeConfig config;
  config.beta = config_.beta;
  config.alpha = stats_.alpha;
  config.tunnel_update = config_.tunnel_update;
  config.scenario_options = config_.planning_scenarios;
  config.scenario_source = config_.planning_source;

  // Three phases so the epoch evaluation loop only ever reads shared state:
  // (1) sample every epoch from its split stream, (2) compute the policy
  // cache for the degradation signatures that actually occurred —
  // no-degradation, or a single degraded fiber (multi-degradation epochs
  // are second-order rare and reuse the first degraded fiber's policy as an
  // approximation) — one parallel task per distinct signature, (3) evaluate
  // the epochs against the now-immutable cache.
  const util::Rng root(rng.next_u64());
  const std::vector<Epoch> epochs = runtime::parallel_map(
      static_cast<std::size_t>(config_.epochs),
      [&](std::size_t e) {
        util::Rng stream = root.split(e);
        return sample_epoch(stream);
      },
      kEpochGrain);

  // First degraded fiber per epoch (-1 = none), and the distinct signatures.
  std::vector<int> epoch_fiber(epochs.size(), -1);
  std::vector<char> needed(static_cast<std::size_t>(stats_.num_fibers()) + 1,
                           0);
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    for (std::size_t f = 0; f < epochs[e].degraded.size(); ++f) {
      if (epochs[e].degraded[f]) {
        epoch_fiber[e] = static_cast<int>(f);
        break;
      }
    }
    needed[static_cast<std::size_t>(epoch_fiber[e] + 1)] = 1;
  }
  std::vector<int> signatures;
  for (std::size_t i = 0; i < needed.size(); ++i) {
    if (needed[i]) signatures.push_back(static_cast<int>(i) - 1);
  }

  struct CachedPolicy {
    net::TunnelSet tunnels{0};
    te::TePolicy policy;
    int faulted = 0;
  };
  std::vector<CachedPolicy> cache(needed.size());
  runtime::parallel_for(signatures.size(), [&](std::size_t s) {
    const int degraded_fiber = signatures[s];
    auto& slot = cache[static_cast<std::size_t>(degraded_fiber + 1)];
    slot.tunnels = base_tunnels_;
    te::PreTeScheme prete(stats_.cut_prob, config);
    te::DegradationScenario scenario =
        te::DegradationScenario::none(stats_.num_fibers());
    if (degraded_fiber >= 0) {
      scenario.degraded[static_cast<std::size_t>(degraded_fiber)] = true;
      scenario.predicted_prob[static_cast<std::size_t>(degraded_fiber)] =
          stats_.cut_given_degradation[static_cast<std::size_t>(
              degraded_fiber)];
    }
    // Fault injection (step = signature index in the degraded-fiber space):
    // corrupt the prediction or starve the solver, then prove the pipeline
    // absorbs it. fault_at is a pure function of (plan, step), so the
    // parallel schedule cannot perturb which signature gets which fault.
    util::Deadline budget = util::Deadline::unlimited();
    util::Deadline* deadline = nullptr;
    if (faults != nullptr) {
      const FaultKind kind = faults->fault_at(degraded_fiber + 1);
      if (kind != FaultKind::kNone) slot.faulted = 1;
      switch (kind) {
        case FaultKind::kPredictorNaN:
        case FaultKind::kPredictorThrow:
          // A throwing predictor surfaces to the scheme as "no usable
          // prediction" — identical to NaN from its point of view.
          if (degraded_fiber >= 0) {
            scenario.predicted_prob[static_cast<std::size_t>(degraded_fiber)] =
                std::numeric_limits<double>::quiet_NaN();
          }
          break;
        case FaultKind::kTelemetryCorruption:
          if (degraded_fiber >= 0) {
            scenario.predicted_prob[static_cast<std::size_t>(degraded_fiber)] =
                1e9;  // absurd collector output; the scheme clamps it
          }
          break;
        case FaultKind::kDeadlineExpiry:
          budget.set_pivot_budget(FaultInjector::kDeadlineExpiryPivots);
          deadline = &budget;
          break;
        case FaultKind::kSolverCollapse:
          budget.set_pivot_budget(FaultInjector::kSolverCollapsePivots);
          deadline = &budget;
          break;
        case FaultKind::kNone:
          break;
      }
    }
    const auto outcome = prete.compute_for_degradation(
        topology_.network, topology_.flows, slot.tunnels, demands, scenario,
        deadline);
    slot.policy = outcome.policy;
  });

  const EpochAccumulator total = runtime::parallel_reduce(
      epochs.size(), EpochAccumulator{},
      [&](std::size_t e) {
        const Epoch& epoch = epochs[e];
        EpochAccumulator acc;
        bool any_cut = false;
        for (std::size_t f = 0; f < epoch.failed.size(); ++f) {
          any_cut = any_cut || epoch.failed[f];
        }
        acc.degraded = epoch_fiber[e] >= 0 ? 1 : 0;
        acc.cut = any_cut ? 1 : 0;

        const CachedPolicy& deployed =
            cache[static_cast<std::size_t>(epoch_fiber[e] + 1)];
        te::TeProblem problem;
        problem.network = &topology_.network;
        problem.flows = &topology_.flows;
        problem.tunnels = &deployed.tunnels;
        problem.demands = demands;
        const double a = epoch_availability(problem, deployed.policy, epoch);
        acc.sum = a;
        acc.sum_sq = a * a;
        return acc;
      },
      merge, kEpochGrain);
  MonteCarloResult result = finalize(total, config_.epochs);
  for (const CachedPolicy& slot : cache) result.faults_injected += slot.faulted;
  return result;
}

}  // namespace prete::sim
