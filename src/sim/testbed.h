#pragma once

#include <vector>

#include "net/topology.h"
#include "optical/detector.h"
#include "sim/latency.h"
#include "util/rng.h"

namespace prete::sim {

// Emulation of the production-level testbed of §5 / Figure 10: three
// routers, hundreds of kilometres of fiber, and a variable optical
// attenuator (VOA) on the s1-s2 span that replays the canonical fiber
// event: healthy (0-65 s), degraded (65-110 s), cut (110-400 s).
struct TestbedScript {
  optical::TimeSec degradation_onset_sec = 65;
  optical::TimeSec cut_sec = 110;
  optical::TimeSec end_sec = 400;
  double healthy_loss_db = 6.0;
  double degraded_extra_db = 5.0;   // inside the 3..10 dB degradation band
  double noise_db = 0.05;
};

struct TestbedRun {
  // Per-second transmission loss observed through the VOA span.
  std::vector<double> trace_db;
  // What the controller's detector reconstructed.
  optical::DetectionResult detection;
  // The controller pipeline timing, triggered at degradation detection.
  PipelineTrace pipeline;
  // Absolute times (seconds from script start).
  double degradation_detected_sec = -1.0;
  double cut_detected_sec = -1.0;
  // True iff the pipeline (including tunnel installs) finished before the
  // actual cut — the §5 feasibility claim.
  bool prepared_before_cut = false;
};

// Runs the testbed scenario: generates the VOA-shaped trace, runs the
// detector at one-second granularity, and times the controller pipeline for
// `num_new_tunnels` tunnel installs over `num_scenarios` scenarios.
TestbedRun run_testbed(const TestbedScript& script, const LatencyModel& latency,
                       int num_new_tunnels, int num_scenarios, util::Rng& rng);

}  // namespace prete::sim
