#include "sim/production_case.h"

#include <algorithm>
#include <cmath>

namespace prete::sim {

namespace {

// Demands of the three tunnels in the case study (Gbps).
constexpr double kFlowS1S2 = 700.0;
constexpr double kFlowS1S3 = 600.0;
constexpr double kFlowS4S3 = 300.0;
constexpr double kLinkCapacity = 1000.0;

}  // namespace

ProductionRun run_production_case(const ProductionScript& script,
                                  const LatencyModel& latency) {
  ProductionRun run;

  // PreTE's preparation completes this long after the degradation onset:
  // detection + inference + scenarios + TE compute + one tunnel install.
  const PipelineTrace pipeline = pipeline_trace(latency, /*num_new_tunnels=*/1,
                                                /*num_scenarios=*/8);
  const double prete_ready_sec =
      script.degradation_onset_sec + pipeline.total_ms / 1000.0;
  const bool prete_prepared = prete_ready_sec < script.cut_sec;

  const double next_te_run =
      std::ceil(script.cut_sec / script.te_period_sec) * script.te_period_sec;

  for (double t = 0.0; t < script.end_sec; t += 1.0) {
    double traditional_loss = 0.0;
    double prete_loss = 0.0;
    if (t >= script.cut_sec) {
      // --- Traditional system ---
      if (t < script.cut_sec + script.router_failover_sec) {
        // Blackhole until the router's local protection kicks in.
        traditional_loss = kFlowS1S3;
      } else if (t < next_te_run) {
        // Backup path s1s2s3: link s1s2 now carries 700 + 600 Gbps.
        traditional_loss = std::max(0.0, kFlowS1S2 + kFlowS1S3 - kLinkCapacity);
      }  // else: the periodic TE run rebalanced onto s1s4s3 -> no loss.

      // --- PreTE ---
      if (prete_prepared) {
        // Millisecond switchover to the pre-established s1s4s3 tunnel:
        // link s1s4 and s4s3 carry 600 + (s4s3's own 300 shares s4s3:
        // 600 + 300 <= 1000) -> no sustained loss. The sub-second switch
        // itself loses at most one sample of traffic.
        if (t < script.cut_sec + 1.0) {
          prete_loss = kFlowS1S3 * 0.05;  // sub-second switch transient
        }
      } else {
        // Preparation missed the cut: behave like the traditional system.
        if (t < script.cut_sec + script.router_failover_sec) {
          prete_loss = kFlowS1S3;
        } else if (t < next_te_run) {
          prete_loss = std::max(0.0, kFlowS1S2 + kFlowS1S3 - kLinkCapacity);
        }
      }
    }
    run.traditional.push_back({t, traditional_loss});
    run.prete.push_back({t, prete_loss});
    run.traditional_lost_gb += traditional_loss / 8.0;
    run.prete_lost_gb += prete_loss / 8.0;
  }
  return run;
}

}  // namespace prete::sim
