#pragma once

#include <vector>

namespace prete::sim {

// Latency constants of the controller pipeline, milliseconds. Defaults are
// the values measured on the paper's production-level testbed (§5, Fig 11):
// the control path itself stays under 300 ms end-to-end; serialized tunnel
// installation dominates afterwards (~250 ms per tunnel, 5 s for 20).
struct LatencyModel {
  double detection_ms = 80.0;            // optical data analysis
  double nn_inference_ms = 5.0;          // "only takes several milliseconds"
  double scenario_regen_ms = 10.0;       // "about ten milliseconds"
  double te_compute_base_ms = 120.0;     // LP/Benders solve, small topology
  double te_compute_per_scenario_ms = 2.0;
  double tunnel_install_ms = 250.0;      // serialized per-tunnel install
  double tunnel_install_jitter_ms = 30.0;
  // Batch strategy (§5: "update a dozen tunnels at a time"): tunnels in a
  // batch install concurrently; batches are serialized.
  int install_batch_size = 1;
};

// One timed stage of the pipeline (a rectangle in Figure 11a).
struct PipelineStage {
  const char* name;
  double start_ms;
  double duration_ms;
};

struct PipelineTrace {
  std::vector<PipelineStage> stages;
  // End of the control-path stages (detection .. TE computation).
  double control_path_ms = 0.0;
  // Full completion including tunnel installation.
  double total_ms = 0.0;
};

// Builds the pipeline trace for a degradation event that requires
// `num_new_tunnels` tunnels and solves over `num_scenarios` scenarios.
PipelineTrace pipeline_trace(const LatencyModel& model, int num_new_tunnels,
                             int num_scenarios);

// Total tunnel installation time for n tunnels (the Figure 11b series):
// linear in n under serialized installs, divided by the batch size when
// batching is enabled.
double tunnel_install_time_ms(const LatencyModel& model, int num_tunnels);

}  // namespace prete::sim
