#pragma once

#include <functional>

#include "net/topology.h"
#include "net/traffic.h"
#include "sim/fault_injector.h"
#include "te/availability.h"
#include "te/evaluator.h"

namespace prete::sim {

// Monte Carlo validation of the analytic availability study: instead of
// probability-weighting enumerated scenarios, sample TE epochs end to end —
// degradation arrivals per fiber, conditional cuts, abrupt cuts — evaluate
// the deployed policy's flow losses in each sampled epoch, and report the
// empirical availability. The analytic and sampled numbers must agree
// within Monte Carlo error; this closes the loop on the evaluator.
//
// Epochs run in parallel on the runtime thread pool. Each run draws exactly
// one u64 from the caller's rng to derive a root stream; epoch e then
// samples from root.split(e), and the availability sums fold in fixed chunk
// order — so results are bit-identical at any PRETE_THREADS setting.
struct MonteCarloConfig {
  int epochs = 4000;
  double beta = 0.99;
  te::ScenarioOptions planning_scenarios;
  te::TunnelUpdateConfig tunnel_update;
  double loss_tolerance = 1e-4;
  // Optional pluggable believed-scenario generator (SRLG-correlated models,
  // scenario reduction): replaces generate_failure_scenarios for the static
  // schemes' beliefs and is forwarded to PreTeScheme in run_prete. Must be
  // deterministic.
  te::ScenarioSource planning_source;
  // Optional correlated nature model: after the independent per-fiber
  // draws, each cut event fires with its probability and cuts its members
  // per the conditional probabilities — still one split stream per epoch,
  // so determinism is unchanged. Null = independent nature (bit-compatible
  // with pre-correlation runs). The pointee must outlive the study.
  const te::CorrelatedFailureModel* correlated_nature = nullptr;
};

struct MonteCarloResult {
  double mean_flow_availability = 0.0;
  int epochs_with_degradation = 0;
  int epochs_with_cut = 0;
  // Standard error of the availability estimate (per-epoch variance).
  double standard_error = 0.0;
  // Component faults injected into policy computation (fault-aware
  // run_prete only; 0 otherwise).
  int faults_injected = 0;
};

class MonteCarloStudy {
 public:
  MonteCarloStudy(const net::Topology& topology, te::PlantStatistics stats,
                  MonteCarloConfig config = {});

  // Samples epochs for a static policy (computed once on the believed
  // static probabilities, like the baselines).
  MonteCarloResult run_static(te::TeScheme& scheme,
                              const net::TrafficMatrix& demands,
                              util::Rng& rng) const;

  // Samples epochs for PreTE: each degradation epoch recomputes the policy
  // with the calibrated probability and Algorithm-1 tunnels.
  //
  // `faults` (may be null = no faults) injects component faults into each
  // policy computation, keyed by signature step = degraded_fiber + 1:
  // predictor NaN/throw become a NaN prediction (sanitized to the static
  // prior by PreTeScheme), telemetry corruption becomes an absurd
  // prediction (clamped), kDeadlineExpiry solves under a tight pivot
  // budget, and kSolverCollapse under a 1-pivot budget (the policy comes
  // back empty and evaluates as fully lost — degraded availability, never
  // a crash). Determinism contract unchanged: results are bit-identical at
  // any thread count for a fixed (rng, faults) pair.
  MonteCarloResult run_prete(const net::TrafficMatrix& demands,
                             util::Rng& rng,
                             const FaultInjector* faults = nullptr) const;

 private:
  // Samples which fibers degrade and which fail in one epoch.
  struct Epoch {
    std::vector<bool> degraded;
    std::vector<bool> failed;
  };
  Epoch sample_epoch(util::Rng& rng) const;

  double epoch_availability(const te::TeProblem& problem,
                            const te::TePolicy& policy,
                            const Epoch& epoch) const;

  const net::Topology& topology_;
  te::PlantStatistics stats_;
  MonteCarloConfig config_;
  net::TunnelSet base_tunnels_;
};

}  // namespace prete::sim
