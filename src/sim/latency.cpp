#include "sim/latency.h"

#include <cmath>

namespace prete::sim {

double tunnel_install_time_ms(const LatencyModel& model, int num_tunnels) {
  if (num_tunnels <= 0) return 0.0;
  const int batch = model.install_batch_size > 0 ? model.install_batch_size : 1;
  const int rounds = (num_tunnels + batch - 1) / batch;
  return static_cast<double>(rounds) * model.tunnel_install_ms;
}

PipelineTrace pipeline_trace(const LatencyModel& model, int num_new_tunnels,
                             int num_scenarios) {
  PipelineTrace trace;
  double t = 0.0;
  auto push = [&](const char* name, double duration) {
    trace.stages.push_back({name, t, duration});
    t += duration;
  };
  push("degradation detection", model.detection_ms);
  push("model inference", model.nn_inference_ms);
  push("failure scenario regeneration", model.scenario_regen_ms);
  push("TE computation",
       model.te_compute_base_ms +
           model.te_compute_per_scenario_ms * static_cast<double>(num_scenarios));
  trace.control_path_ms = t;
  push("tunnel update", tunnel_install_time_ms(model, num_new_tunnels));
  trace.total_ms = t;
  return trace;
}

}  // namespace prete::sim
