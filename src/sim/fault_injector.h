#pragma once

#include <cstdint>
#include <vector>

#include "net/srlg.h"
#include "util/rng.h"

namespace prete::sim {

// The component faults the harness can inject into a control-plane run.
enum class FaultKind {
  kNone = 0,
  // Telemetry corruption: NaN runs, infinite spikes, stuck-at readings,
  // negative samples (see corrupt_trace), or an absurd predicted
  // probability where no raw trace exists.
  kTelemetryCorruption,
  kPredictorNaN,    // the failure predictor returns NaN
  kPredictorThrow,  // the failure predictor throws
  // The TE solve runs out of budget mid-decomposition: a moderate pivot
  // budget that typically leaves a usable incumbent.
  kDeadlineExpiry,
  // The TE solve collapses entirely: a 1-pivot budget that cannot even
  // finish simplex phase 1, so no incumbent exists and the controller must
  // descend past the incumbent rung.
  kSolverCollapse,
  // Control-plane faults, injected into the epoch pipeline rather than a
  // single component. A stalled ingest/sanitize stage (the telemetry
  // collector hangs): the stage sleeps, tripping the pipeline's wall-mode
  // watchdog. A no-op in deterministic (pivot-budget) campaigns, where wall
  // time must not influence decisions.
  kStageStall,
  // The telemetry window for the step is never delivered: the harness hands
  // the controller an empty trace, which the input guards must reject.
  kWindowDrop,
  // The window is delivered twice (collector retransmit); ingest dedup must
  // drop the second copy so the controller is not double-driven.
  kWindowDuplicate,
  // The solve stage itself throws (Controller::arm_solver_exception): the
  // degradation ladder must contain the exception and still install a
  // validated policy.
  kSolverThrow,
};

const char* fault_kind_name(FaultKind kind);

// Per-step probabilities of each fault kind, evaluated in declaration order
// on a single uniform draw (so they are mutually exclusive and their sum
// must be <= 1).
struct FaultRates {
  double telemetry_corruption = 0.0;
  double predictor_nan = 0.0;
  double predictor_throw = 0.0;
  double deadline_expiry = 0.0;
  double solver_collapse = 0.0;
  // Control-plane fault rates. Appended after the component rates and
  // evaluated after them on the same draw, so a plan that leaves these at
  // their zero defaults samples bit-identically to a pre-pipeline build.
  double stage_stall = 0.0;
  double window_drop = 0.0;
  double window_duplicate = 0.0;
  double solver_throw = 0.0;

  double total() const {
    return telemetry_corruption + predictor_nan + predictor_throw +
           deadline_expiry + solver_collapse + stage_stall + window_drop +
           window_duplicate + solver_throw;
  }
};

// A deterministic fault schedule: forced (step, kind) entries fire exactly
// at their step; every other step samples from `rates` on the stream
// util::Rng(seed).split(step). No wall clock, no global state — the same
// plan yields the same faults at any thread count and in any query order.
struct FaultPlan {
  std::uint64_t seed = 0;
  FaultRates rates;
  struct Forced {
    std::int64_t step = 0;
    FaultKind kind = FaultKind::kNone;
  };
  std::vector<Forced> forced;
};

// A correlated group-cut schedule layered on top of the component faults:
// conduit dig-ups and weather events take down every fiber of an SRLG group
// at once. Like FaultPlan, forced (step, group) entries fire exactly at
// their step; every other step cuts a random non-singleton group with
// probability `rate`, sampled on an independent split stream — group cuts
// never perturb the component-fault draws and vice versa.
struct GroupCutPlan {
  net::SrlgMap srlg;
  double rate = 0.0;
  struct Forced {
    std::int64_t step = 0;
    int group = -1;
  };
  std::vector<Forced> forced;

  bool enabled() const {
    return srlg.num_groups > 0 && (rate > 0.0 || !forced.empty());
  }
};

// Schedule-driven fault injector for the control plane. `step` is whatever
// monotone identifier the harness uses for one decision opportunity — a
// campaign step, an epoch signature — and fault_at(step) is a pure function
// of (plan, step), so parallel consumers can query it order-independently.
class FaultInjector {
 public:
  // Pivot budgets used when materializing the two solver-fault kinds.
  static constexpr std::int64_t kDeadlineExpiryPivots = 500;
  static constexpr std::int64_t kSolverCollapsePivots = 1;

  explicit FaultInjector(FaultPlan plan);
  FaultInjector(FaultPlan plan, GroupCutPlan group_cuts);

  FaultKind fault_at(std::int64_t step) const;

  // Which SRLG group (if any) is cut at `step`: a forced entry wins, then a
  // rate-sampled draw on the step's group-cut stream picks uniformly among
  // the non-singleton groups. Returns -1 for no group cut. Pure function of
  // (plans, step), like fault_at.
  int group_cut_at(std::int64_t step) const;

  // Fiber-level expansion of group_cut_at: the failed-fiber vector for the
  // step's group cut, or an all-false vector when no cut fires. Empty when
  // no group-cut plan is configured.
  std::vector<bool> group_cut_fibers(std::int64_t step) const;

  // Deterministically corrupts a telemetry trace in place, choosing among
  // four corruption modes (NaN run, +inf spike, stuck-at flatline, negative
  // run) from the step's stream. The trace keeps its length.
  void corrupt_trace(std::int64_t step, std::vector<double>& trace) const;

  // Stall duration for a kStageStall step: uniform in [max_ms/2, max_ms],
  // drawn from the step's own stall stream (pure function of plan and
  // step, like the other schedules). Returns 0 when max_ms <= 0.
  double stall_ms_at(std::int64_t step, double max_ms) const;

  const FaultPlan& plan() const { return plan_; }
  const GroupCutPlan& group_cuts() const { return group_cuts_; }

 private:
  FaultPlan plan_;
  GroupCutPlan group_cuts_;
  // Non-singleton groups, ascending — the candidates for sampled cuts
  // (cutting a singleton group is just an independent fiber fault, which
  // the base fault plan already covers).
  std::vector<int> cuttable_groups_;
};

}  // namespace prete::sim
