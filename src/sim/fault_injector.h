#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace prete::sim {

// The component faults the harness can inject into a control-plane run.
enum class FaultKind {
  kNone = 0,
  // Telemetry corruption: NaN runs, infinite spikes, stuck-at readings,
  // negative samples (see corrupt_trace), or an absurd predicted
  // probability where no raw trace exists.
  kTelemetryCorruption,
  kPredictorNaN,    // the failure predictor returns NaN
  kPredictorThrow,  // the failure predictor throws
  // The TE solve runs out of budget mid-decomposition: a moderate pivot
  // budget that typically leaves a usable incumbent.
  kDeadlineExpiry,
  // The TE solve collapses entirely: a 1-pivot budget that cannot even
  // finish simplex phase 1, so no incumbent exists and the controller must
  // descend past the incumbent rung.
  kSolverCollapse,
};

const char* fault_kind_name(FaultKind kind);

// Per-step probabilities of each fault kind, evaluated in declaration order
// on a single uniform draw (so they are mutually exclusive and their sum
// must be <= 1).
struct FaultRates {
  double telemetry_corruption = 0.0;
  double predictor_nan = 0.0;
  double predictor_throw = 0.0;
  double deadline_expiry = 0.0;
  double solver_collapse = 0.0;

  double total() const {
    return telemetry_corruption + predictor_nan + predictor_throw +
           deadline_expiry + solver_collapse;
  }
};

// A deterministic fault schedule: forced (step, kind) entries fire exactly
// at their step; every other step samples from `rates` on the stream
// util::Rng(seed).split(step). No wall clock, no global state — the same
// plan yields the same faults at any thread count and in any query order.
struct FaultPlan {
  std::uint64_t seed = 0;
  FaultRates rates;
  struct Forced {
    std::int64_t step = 0;
    FaultKind kind = FaultKind::kNone;
  };
  std::vector<Forced> forced;
};

// Schedule-driven fault injector for the control plane. `step` is whatever
// monotone identifier the harness uses for one decision opportunity — a
// campaign step, an epoch signature — and fault_at(step) is a pure function
// of (plan, step), so parallel consumers can query it order-independently.
class FaultInjector {
 public:
  // Pivot budgets used when materializing the two solver-fault kinds.
  static constexpr std::int64_t kDeadlineExpiryPivots = 500;
  static constexpr std::int64_t kSolverCollapsePivots = 1;

  explicit FaultInjector(FaultPlan plan);

  FaultKind fault_at(std::int64_t step) const;

  // Deterministically corrupts a telemetry trace in place, choosing among
  // four corruption modes (NaN run, +inf spike, stuck-at flatline, negative
  // run) from the step's stream. The trace keeps its length.
  void corrupt_trace(std::int64_t step, std::vector<double>& trace) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
};

}  // namespace prete::sim
