#include "sim/fault_injector.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace prete::sim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTelemetryCorruption:
      return "telemetry-corruption";
    case FaultKind::kPredictorNaN:
      return "predictor-nan";
    case FaultKind::kPredictorThrow:
      return "predictor-throw";
    case FaultKind::kDeadlineExpiry:
      return "deadline-expiry";
    case FaultKind::kSolverCollapse:
      return "solver-collapse";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  if (plan_.rates.total() > 1.0 + 1e-12) {
    throw std::invalid_argument("fault rates must sum to <= 1");
  }
}

FaultKind FaultInjector::fault_at(std::int64_t step) const {
  for (const FaultPlan::Forced& f : plan_.forced) {
    if (f.step == step) return f.kind;
  }
  util::Rng stream =
      util::Rng(plan_.seed).split(static_cast<std::uint64_t>(step));
  double u = stream.next_double();
  const FaultRates& r = plan_.rates;
  if ((u -= r.telemetry_corruption) < 0.0) {
    return FaultKind::kTelemetryCorruption;
  }
  if ((u -= r.predictor_nan) < 0.0) return FaultKind::kPredictorNaN;
  if ((u -= r.predictor_throw) < 0.0) return FaultKind::kPredictorThrow;
  if ((u -= r.deadline_expiry) < 0.0) return FaultKind::kDeadlineExpiry;
  if ((u -= r.solver_collapse) < 0.0) return FaultKind::kSolverCollapse;
  return FaultKind::kNone;
}

void FaultInjector::corrupt_trace(std::int64_t step,
                                  std::vector<double>& trace) const {
  if (trace.empty()) return;
  // A distinct stream from fault_at's (xor'd constant) so corruption shape
  // and fault sampling stay independent.
  util::Rng stream = util::Rng(plan_.seed ^ 0xC0FFEEULL)
                         .split(static_cast<std::uint64_t>(step));
  const std::size_t n = trace.size();
  const std::size_t start = static_cast<std::size_t>(stream.next_below(n));
  const std::size_t len =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   stream.next_below(n / 4 + 1)));
  const std::size_t end = std::min(n, start + len);
  switch (stream.next_below(4)) {
    case 0:  // NaN run (dropped samples)
      for (std::size_t i = start; i < end; ++i) {
        trace[i] = std::numeric_limits<double>::quiet_NaN();
      }
      break;
    case 1:  // infinite spike
      trace[start] = std::numeric_limits<double>::infinity();
      break;
    case 2: {  // stuck-at flatline from `anchor` to the end of the window
      // Clamp the anchor off the last sample so the flatline always
      // overwrites at least one reading (a corruption that corrupts nothing
      // would silently weaken the campaign).
      const std::size_t anchor = n >= 2 ? std::min(start, n - 2) : 0;
      for (std::size_t i = anchor + 1; i < n; ++i) trace[i] = trace[anchor];
      break;
    }
    default:  // negative (physically impossible) run
      for (std::size_t i = start; i < end; ++i) trace[i] = -5.0;
      break;
  }
}

}  // namespace prete::sim
