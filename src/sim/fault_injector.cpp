#include "sim/fault_injector.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace prete::sim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTelemetryCorruption:
      return "telemetry-corruption";
    case FaultKind::kPredictorNaN:
      return "predictor-nan";
    case FaultKind::kPredictorThrow:
      return "predictor-throw";
    case FaultKind::kDeadlineExpiry:
      return "deadline-expiry";
    case FaultKind::kSolverCollapse:
      return "solver-collapse";
    case FaultKind::kStageStall:
      return "stage-stall";
    case FaultKind::kWindowDrop:
      return "window-drop";
    case FaultKind::kWindowDuplicate:
      return "window-duplicate";
    case FaultKind::kSolverThrow:
      return "solver-throw";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan)
    : FaultInjector(std::move(plan), GroupCutPlan{}) {}

FaultInjector::FaultInjector(FaultPlan plan, GroupCutPlan group_cuts)
    : plan_(std::move(plan)), group_cuts_(std::move(group_cuts)) {
  if (plan_.rates.total() > 1.0 + 1e-12) {
    throw std::invalid_argument("fault rates must sum to <= 1");
  }
  if (!(group_cuts_.rate >= 0.0 && group_cuts_.rate <= 1.0)) {
    throw std::invalid_argument("group cut rate must be in [0, 1]");
  }
  for (const GroupCutPlan::Forced& f : group_cuts_.forced) {
    if (f.group < 0 || f.group >= group_cuts_.srlg.num_groups) {
      throw std::invalid_argument("forced group cut out of range");
    }
  }
  for (int g = 0; g < group_cuts_.srlg.num_groups; ++g) {
    if (!group_cuts_.srlg.singleton(g)) cuttable_groups_.push_back(g);
  }
}

FaultKind FaultInjector::fault_at(std::int64_t step) const {
  for (const FaultPlan::Forced& f : plan_.forced) {
    if (f.step == step) return f.kind;
  }
  util::Rng stream =
      util::Rng(plan_.seed).split(static_cast<std::uint64_t>(step));
  double u = stream.next_double();
  const FaultRates& r = plan_.rates;
  if ((u -= r.telemetry_corruption) < 0.0) {
    return FaultKind::kTelemetryCorruption;
  }
  if ((u -= r.predictor_nan) < 0.0) return FaultKind::kPredictorNaN;
  if ((u -= r.predictor_throw) < 0.0) return FaultKind::kPredictorThrow;
  if ((u -= r.deadline_expiry) < 0.0) return FaultKind::kDeadlineExpiry;
  if ((u -= r.solver_collapse) < 0.0) return FaultKind::kSolverCollapse;
  if ((u -= r.stage_stall) < 0.0) return FaultKind::kStageStall;
  if ((u -= r.window_drop) < 0.0) return FaultKind::kWindowDrop;
  if ((u -= r.window_duplicate) < 0.0) return FaultKind::kWindowDuplicate;
  if ((u -= r.solver_throw) < 0.0) return FaultKind::kSolverThrow;
  return FaultKind::kNone;
}

double FaultInjector::stall_ms_at(std::int64_t step, double max_ms) const {
  if (max_ms <= 0.0) return 0.0;
  // Its own stream family (xor'd constant), like corruption and group cuts,
  // so stall durations never perturb the other schedules' draws.
  util::Rng stream = util::Rng(plan_.seed ^ 0x57A11ULL)
                         .split(static_cast<std::uint64_t>(step));
  return max_ms * (0.5 + 0.5 * stream.next_double());
}

int FaultInjector::group_cut_at(std::int64_t step) const {
  if (!group_cuts_.enabled()) return -1;
  for (const GroupCutPlan::Forced& f : group_cuts_.forced) {
    if (f.step == step) return f.group;
  }
  if (group_cuts_.rate <= 0.0 || cuttable_groups_.empty()) return -1;
  // Group cuts draw from their own stream family (xor'd constant) so they
  // compose with fault_at without perturbing its samples.
  util::Rng stream = util::Rng(plan_.seed ^ 0x6C0DEULL)
                         .split(static_cast<std::uint64_t>(step));
  if (!stream.bernoulli(group_cuts_.rate)) return -1;
  return cuttable_groups_[static_cast<std::size_t>(
      stream.next_below(cuttable_groups_.size()))];
}

std::vector<bool> FaultInjector::group_cut_fibers(std::int64_t step) const {
  std::vector<bool> group_failed(
      static_cast<std::size_t>(group_cuts_.srlg.num_groups), false);
  const int group = group_cut_at(step);
  if (group >= 0) group_failed[static_cast<std::size_t>(group)] = true;
  if (group_cuts_.srlg.num_groups == 0) return {};
  return net::expand_group_failures(group_cuts_.srlg, group_failed);
}

void FaultInjector::corrupt_trace(std::int64_t step,
                                  std::vector<double>& trace) const {
  if (trace.empty()) return;
  // A distinct stream from fault_at's (xor'd constant) so corruption shape
  // and fault sampling stay independent.
  util::Rng stream = util::Rng(plan_.seed ^ 0xC0FFEEULL)
                         .split(static_cast<std::uint64_t>(step));
  const std::size_t n = trace.size();
  const std::size_t start = static_cast<std::size_t>(stream.next_below(n));
  const std::size_t len =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   stream.next_below(n / 4 + 1)));
  const std::size_t end = std::min(n, start + len);
  switch (stream.next_below(4)) {
    case 0:  // NaN run (dropped samples)
      for (std::size_t i = start; i < end; ++i) {
        trace[i] = std::numeric_limits<double>::quiet_NaN();
      }
      break;
    case 1:  // infinite spike
      trace[start] = std::numeric_limits<double>::infinity();
      break;
    case 2: {  // stuck-at flatline from `anchor` to the end of the window
      // Clamp the anchor off the last sample so the flatline always
      // overwrites at least one reading (a corruption that corrupts nothing
      // would silently weaken the campaign).
      const std::size_t anchor = n >= 2 ? std::min(start, n - 2) : 0;
      for (std::size_t i = anchor + 1; i < n; ++i) trace[i] = trace[anchor];
      break;
    }
    default:  // negative (physically impossible) run
      for (std::size_t i = start; i < end; ++i) trace[i] = -5.0;
      break;
  }
}

}  // namespace prete::sim
