#include "sim/testbed.h"

#include "optical/simulator.h"
#include "util/distributions.h"

namespace prete::sim {

TestbedRun run_testbed(const TestbedScript& script, const LatencyModel& latency,
                       int num_new_tunnels, int num_scenarios,
                       util::Rng& rng) {
  TestbedRun run;
  run.trace_db.reserve(static_cast<std::size_t>(script.end_sec));
  for (optical::TimeSec t = 0; t < script.end_sec; ++t) {
    double loss = script.healthy_loss_db;
    if (t >= script.cut_sec) {
      loss += optical::kCutLossDb;
    } else if (t >= script.degradation_onset_sec) {
      loss += script.degraded_extra_db +
              0.2 * util::sample_standard_normal(rng);  // visible wiggle
    }
    loss += script.noise_db * util::sample_standard_normal(rng);
    run.trace_db.push_back(loss);
  }

  net::Fiber fiber;
  fiber.id = 0;
  fiber.length_km = 100.0;  // "the fiber length is about 100 km"
  const optical::DegradationDetector detector(script.healthy_loss_db);
  run.detection = detector.scan(run.trace_db, 0, fiber);

  if (!run.detection.degradations.empty()) {
    run.degradation_detected_sec =
        static_cast<double>(run.detection.degradations.front().onset_sec);
  }
  if (!run.detection.cuts.empty()) {
    run.cut_detected_sec =
        static_cast<double>(run.detection.cuts.front().time_sec);
  }

  run.pipeline = pipeline_trace(latency, num_new_tunnels, num_scenarios);
  if (run.degradation_detected_sec >= 0.0) {
    const double done_sec =
        run.degradation_detected_sec + run.pipeline.total_ms / 1000.0;
    run.prepared_before_cut = done_sec < static_cast<double>(script.cut_sec);
  }
  return run;
}

}  // namespace prete::sim
