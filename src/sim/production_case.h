#pragma once

#include <vector>

#include "net/topology.h"
#include "sim/latency.h"

namespace prete::sim {

// Replay of the §7 production case (Figure 18): a 4-site backbone subset
// with 1000 Gbps links; tunnels s1s2 (700G), s1s3 (600G) and s4s3 (300G).
// The fiber under IP link s1s3 degrades for tens of seconds and then cuts.
//
//  - Traditional system: routers switch s1s3's traffic to the preconfigured
//    backup s1s2s3 a few seconds after the failure; link s1s2 then carries
//    700 + 600 > 1000 Gbps, so packet loss persists until the next TE period.
//  - PreTE: the controller reacts to the degradation signal, prepares the
//    s1s4s3 backup in advance, and switches in milliseconds -> no sustained
//    loss.
struct ProductionScript {
  double degradation_onset_sec = 30.0;
  double cut_sec = 70.0;           // "tens of seconds" after the degradation
  double end_sec = 400.0;
  double te_period_sec = 300.0;    // next periodic TE run fixes the overload
  double router_failover_sec = 3.0;  // local protection switch time
};

struct LossSample {
  double time_sec;
  double loss_gbps;  // instantaneous traffic loss across the network
};

struct ProductionRun {
  std::vector<LossSample> traditional;
  std::vector<LossSample> prete;
  double traditional_lost_gb = 0.0;  // integrated loss (gigabits / 8 bytes)
  double prete_lost_gb = 0.0;
};

// Simulates both systems at 1-second resolution and returns the loss
// timelines of Figure 18(b). `latency` controls PreTE's preparation time;
// if the preparation cannot finish before the cut, PreTE degrades to the
// traditional behaviour (conservative).
ProductionRun run_production_case(const ProductionScript& script,
                                  const LatencyModel& latency);

}  // namespace prete::sim
